// Micro-benchmarks: decoder throughput for every shop model. The fitness
// evaluation is the hot loop of every engine (the survey's motivation for
// the master-slave model), so decode cost per genome is the number that
// sizes all the experiment budgets.
#include <benchmark/benchmark.h>

#include <numeric>
#include <span>
#include <vector>

#include "src/ga/problem_registry.h"
#include "src/par/rng.h"
#include "src/sched/batch_decode.h"
#include "src/sched/classics.h"
#include "src/sched/generators.h"
#include "src/sched/taillard.h"

namespace {

using namespace psga;

// Decoder inputs rotate through a small pool of random genomes, the way
// an evaluation loop sees a population — a single fixed input would let
// the branch predictor and prefetcher memorize the whole decode and
// overstate scalar throughput.
constexpr int kGenomePool = 16;

std::vector<std::vector<int>> shuffled_permutations(int count, int jobs,
                                                    std::uint64_t seed) {
  par::Rng rng(seed);
  std::vector<std::vector<int>> perms(static_cast<std::size_t>(count));
  for (auto& perm : perms) {
    perm.resize(static_cast<std::size_t>(jobs));
    std::iota(perm.begin(), perm.end(), 0);
    for (std::size_t i = perm.size(); i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.below(i)]);
    }
  }
  return perms;
}

void BM_FlowShopMakespan(benchmark::State& state) {
  const auto inst = sched::taillard_flow_shop(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(1)), 42);
  const auto perms = shuffled_permutations(kGenomePool, inst.jobs, 7);
  sched::FlowShopScratch scratch;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::flow_shop_makespan(inst, perms[i], scratch));
    i = (i + 1) % perms.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlowShopMakespan)->Args({20, 5})->Args({50, 10})->Args({100, 20});

void BM_FlowShopMakespanBatch(benchmark::State& state) {
  // The SoA batch kernel advancing B permutations in lockstep; items/s is
  // per permutation, directly comparable to BM_FlowShopMakespan.
  const auto inst = sched::taillard_flow_shop(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(1)), 42);
  const auto batch = static_cast<int>(state.range(2));
  const auto perms = shuffled_permutations(batch, inst.jobs, 7);
  std::vector<std::span<const int>> lanes(perms.begin(), perms.end());
  std::vector<sched::Time> out(lanes.size());
  sched::FlowShopBatchScratch scratch;
  for (auto _ : state) {
    sched::flow_shop_makespan_batch(inst, lanes, out, scratch);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_FlowShopMakespanBatch)
    ->Args({20, 5, 16})
    ->Args({50, 10, 16})
    ->Args({100, 20, 16});

std::vector<std::vector<int>> random_op_sequences(
    const sched::JobShopInstance& inst, int count, std::uint64_t seed) {
  par::Rng rng(seed);
  std::vector<std::vector<int>> seqs(static_cast<std::size_t>(count));
  for (auto& s : seqs) s = sched::random_operation_sequence(inst, rng);
  return seqs;
}

void BM_JobShopSemiActive(benchmark::State& state) {
  const auto& inst = sched::ft10().instance;
  const auto seqs = random_op_sequences(inst, kGenomePool, 1);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::decode_operation_based(inst, seqs[i]));
    i = (i + 1) % seqs.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JobShopSemiActive);

void BM_JobShopSemiActiveScratch(benchmark::State& state) {
  // Workspace-reuse fast path: scratch allocated once, reused per decode —
  // the per-genome cost inside the Evaluator hot loop.
  const auto& inst = sched::ft10().instance;
  const auto seqs = random_op_sequences(inst, kGenomePool, 1);
  sched::JobShopScratch scratch;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        &sched::decode_operation_based(inst, seqs[i], scratch));
    i = (i + 1) % seqs.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JobShopSemiActiveScratch);

void BM_JobShopGifflerThompson(benchmark::State& state) {
  const auto& inst = sched::ft10().instance;
  const auto seqs = random_op_sequences(inst, kGenomePool, 1);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::giffler_thompson_sequence(inst, seqs[i]));
    i = (i + 1) % seqs.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JobShopGifflerThompson);

void BM_JobShopGifflerThompsonScratch(benchmark::State& state) {
  const auto& inst = sched::ft10().instance;
  const auto seqs = random_op_sequences(inst, kGenomePool, 1);
  sched::JobShopScratch scratch;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        &sched::giffler_thompson_sequence(inst, seqs[i], scratch));
    i = (i + 1) % seqs.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JobShopGifflerThompsonScratch);

void BM_JobShopSemiActiveBatch(benchmark::State& state) {
  // Shared-scratch batch decoder computing completion times directly
  // (never materializing a Schedule); items/s per sequence, comparable
  // to BM_JobShopSemiActiveScratch.
  const auto& inst = sched::ft10().instance;
  const auto batch = static_cast<int>(state.range(0));
  const auto seqs = random_op_sequences(inst, batch, 1);
  std::vector<std::span<const int>> lanes(seqs.begin(), seqs.end());
  std::vector<double> out(lanes.size());
  sched::JobShopBatchScratch scratch;
  for (auto _ : state) {
    sched::job_shop_objective_batch(inst, lanes,
                                    sched::JobShopBatchDecoder::kSemiActive,
                                    sched::Criterion::kMakespan, out, scratch);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_JobShopSemiActiveBatch)->Arg(16);

void BM_JobShopGifflerThompsonBatch(benchmark::State& state) {
  const auto& inst = sched::ft10().instance;
  const auto batch = static_cast<int>(state.range(0));
  const auto seqs = random_op_sequences(inst, batch, 1);
  std::vector<std::span<const int>> lanes(seqs.begin(), seqs.end());
  std::vector<double> out(lanes.size());
  sched::JobShopBatchScratch scratch;
  for (auto _ : state) {
    sched::job_shop_objective_batch(inst, lanes,
                                    sched::JobShopBatchDecoder::kActive,
                                    sched::Criterion::kMakespan, out, scratch);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_JobShopGifflerThompsonBatch)->Arg(16);

void BM_OpenShopDecode(benchmark::State& state) {
  const auto inst = sched::random_open_shop(15, 8, 7);
  par::Rng rng(2);
  const auto seq = sched::random_job_repetition_sequence(inst, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::decode_open_shop(inst, seq, sched::OpenShopDecoder::kLptTask));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OpenShopDecode);

void BM_OpenShopDecodeScratch(benchmark::State& state) {
  const auto inst = sched::random_open_shop(15, 8, 7);
  par::Rng rng(2);
  const auto seq = sched::random_job_repetition_sequence(inst, rng);
  sched::OpenShopScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(&sched::decode_open_shop(
        inst, seq, sched::OpenShopDecoder::kLptTask, scratch));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OpenShopDecodeScratch);

void BM_HybridFlowShopDecode(benchmark::State& state) {
  sched::HfsParams params;
  params.jobs = 20;
  params.machines_per_stage = {3, 2, 3};
  params.setup_hi = state.range(0) != 0 ? 10 : 0;
  const auto inst = sched::random_hybrid_flow_shop(params, 9);
  std::vector<int> perm(20);
  std::iota(perm.begin(), perm.end(), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::decode_hybrid_flow_shop(inst, perm));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HybridFlowShopDecode)->Arg(0)->Arg(1);

void BM_HybridFlowShopDecodeScratch(benchmark::State& state) {
  sched::HfsParams params;
  params.jobs = 20;
  params.machines_per_stage = {3, 2, 3};
  params.setup_hi = state.range(0) != 0 ? 10 : 0;
  const auto inst = sched::random_hybrid_flow_shop(params, 9);
  std::vector<int> perm(20);
  std::iota(perm.begin(), perm.end(), 0);
  sched::HybridFlowShopScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        &sched::decode_hybrid_flow_shop(inst, perm, scratch));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HybridFlowShopDecodeScratch)->Arg(0)->Arg(1);

void BM_FlexibleJobShopDecode(benchmark::State& state) {
  sched::FjsParams params;
  params.jobs = 12;
  params.machines = 6;
  params.ops_per_job = 5;
  params.setup_hi = 10;
  const auto inst = sched::random_flexible_job_shop(params, 11);
  par::Rng rng(3);
  const auto assign = sched::random_fjs_assignment(inst, rng);
  const auto seq = sched::random_fjs_sequence(inst, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::decode_flexible_job_shop(inst, assign, seq));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlexibleJobShopDecode);

void BM_FlexibleJobShopDecodeScratch(benchmark::State& state) {
  sched::FjsParams params;
  params.jobs = 12;
  params.machines = 6;
  params.ops_per_job = 5;
  params.setup_hi = 10;
  const auto inst = sched::random_flexible_job_shop(params, 11);
  par::Rng rng(3);
  const auto assign = sched::random_fjs_assignment(inst, rng);
  const auto seq = sched::random_fjs_sequence(inst, rng);
  sched::FlexibleJobShopScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        &sched::decode_flexible_job_shop(inst, assign, seq, scratch));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlexibleJobShopDecodeScratch);

void BM_FuzzyFlowShopAgreement(benchmark::State& state) {
  const auto crisp = sched::taillard_flow_shop(20, 5, 42);
  const auto fuzzy = sched::fuzzify(crisp.proc, 0.2, 1.6, 0.8);
  std::vector<int> perm(20);
  std::iota(perm.begin(), perm.end(), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::mean_agreement(fuzzy, perm));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FuzzyFlowShopAgreement);

void BM_LotStreamingDecode(benchmark::State& state) {
  sched::LotStreamParams params;
  params.jobs = 8;
  params.sublots = 3;
  const auto inst = sched::random_lot_streaming(params, 13);
  par::Rng rng(5);
  std::vector<double> keys(static_cast<std::size_t>(inst.total_sublots()));
  for (auto& k : keys) k = rng.uniform(0.1, 1.0);
  std::vector<int> perm(static_cast<std::size_t>(inst.total_sublots()));
  std::iota(perm.begin(), perm.end(), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::lot_streaming_makespan(inst, keys, perm));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LotStreamingDecode);

void BM_LotStreamingDecodeScratch(benchmark::State& state) {
  // The scratch keeps the expanded hybrid-flow-shop instance alive and
  // only rewrites durations per genome — the largest reuse win of all
  // decoders.
  sched::LotStreamParams params;
  params.jobs = 8;
  params.sublots = 3;
  const auto inst = sched::random_lot_streaming(params, 13);
  par::Rng rng(5);
  std::vector<double> keys(static_cast<std::size_t>(inst.total_sublots()));
  for (auto& k : keys) k = rng.uniform(0.1, 1.0);
  std::vector<int> perm(static_cast<std::size_t>(inst.total_sublots()));
  std::iota(perm.begin(), perm.end(), 0);
  sched::LotStreamingScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::lot_streaming_makespan(inst, keys, perm, scratch));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LotStreamingDecodeScratch);

}  // namespace

BENCHMARK_MAIN();
