// E24 — Section II "new integrated factors": Xu et al. [8] optimize peak
// power against production efficiency; Tang et al. [9] reduce energy and
// makespan together. This bench sweeps the scalarization weight between
// makespan and the energy metrics on a flow shop and prints the resulting
// trade-off curve — the global-trade-off shape [8] reports (lower peak
// power is bought with longer makespan, and vice versa).
#include "bench/bench_util.h"
#include "src/ga/problem_registry.h"
#include "src/ga/solver.h"
#include "src/sched/energy.h"
#include "src/sched/taillard.h"

int main() {
  using namespace psga;
  bench::header("E24 energy_tradeoff", "Survey §II, Xu [8] / Tang [9]",
                "energy-aware scheduling: trading makespan against total "
                "energy and peak power");

  // Few jobs relative to machines: the pipeline is never saturated, so
  // permutations genuinely shift how many machines run concurrently —
  // otherwise peak power would be sequence-invariant.
  const auto inst = sched::taillard_flow_shop(8, 8, 2401);
  const auto profiles = sched::random_power_profiles(8, 24);

  stats::Table table({"weight on energy terms", "Cmax", "total energy",
                      "peak power"});
  for (double w : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    sched::EnergyObjectiveWeights weights;
    weights.makespan = 1.0 - w;
    weights.energy = w * 0.02;     // scale to comparable magnitudes
    weights.peak_power = w * 2.0;
    auto problem = ga::make_problem(
        sched::EnergyAwareFlowShop(inst, profiles, weights));
    ga::GaConfig cfg;
    cfg.population = 60;
    cfg.termination.max_generations = 40 * bench::scale();
    cfg.seed = 24;
    const auto engine = ga::make_engine(problem, cfg);
    const ga::GaResult result = engine->run();

    sched::EnergyAwareFlowShop reporter(inst, profiles, weights);
    const auto report = reporter.report(result.best.seq);
    table.add_row({stats::Table::num(w, 2),
                   std::to_string(reporter.makespan(result.best.seq)),
                   stats::Table::num(report.total_energy(), 0),
                   stats::Table::num(report.peak_power, 1)});
  }
  table.print();
  std::printf("\nExpected shape ([8][9]): as the weight moves toward the "
              "energy terms, peak power and idle energy fall while the "
              "makespan rises — the trade-off curve both papers optimize "
              "along.\n");
  return 0;
}
