// E11 — Spanos et al. [29]: island GA with elitist selection, path
// relinking crossover and swap mutation, where a subpopulation that
// stagnates (more than half its individuals within a Hamming-distance
// threshold of the best) merges into another, until one island remains.
// Paper: comparable performance with five contemporary approaches.
//
// Reproduction: merging islands vs fixed islands vs single GA at equal
// budget on ft10; report bests and surviving island count.
#include "bench/bench_util.h"
#include "src/ga/solver.h"
#include "src/ga/problem_registry.h"
#include "src/ga/registry.h"
#include "src/sched/classics.h"

int main() {
  using namespace psga;
  bench::header("E11 merging_islands", "Spanos et al. [29], §III.D",
                "islands merge when stagnated (Hamming criterion) until one "
                "remains; performance comparable to recent approaches");

  auto problem = ga::make_problem(
      sched::ft10().instance, ga::JobShopProblem::Decoder::kGifflerThompson);
  const int generations = 50 * bench::scale();

  auto base_config = [&] {
    ga::IslandGaConfig cfg;
    cfg.islands = 6;
    cfg.base.population = 16;
    cfg.base.termination.max_generations = generations;
    cfg.base.seed = 29;
    cfg.base.ops.selection = ga::make_selection("elitist-roulette");
    cfg.base.ops.crossover =
        std::make_shared<ga::PathRelinkCrossover>(problem, 6);  // [29]
    cfg.base.ops.mutation = ga::make_mutation("swap");
    cfg.migration.interval = 10;
    return cfg;
  };

  stats::Table table(
      {"configuration", "best Cmax", "surviving islands", "evaluations"});

  {
    ga::IslandGaConfig cfg = base_config();
    cfg.merge.enabled = true;
    cfg.merge.hamming_threshold = 40;
    cfg.merge.fraction = 0.5;
    const auto engine = ga::make_engine(problem, cfg);
    const auto r = engine->run();
    table.add_row({"merging islands ([29])",
                   stats::Table::num(r.best_objective, 0),
                   std::to_string(r.islands->surviving),
                   std::to_string(r.evaluations)});
  }
  {
    ga::IslandGaConfig cfg = base_config();
    const auto engine = ga::make_engine(problem, cfg);
    const auto r = engine->run();
    table.add_row({"fixed 6 islands",
                   stats::Table::num(r.best_objective, 0),
                   std::to_string(r.islands->surviving),
                   std::to_string(r.evaluations)});
  }
  {
    ga::GaConfig cfg = base_config().base;
    cfg.population = 96;
    const auto engine = ga::make_engine(problem, cfg);
    const auto r = engine->run();
    table.add_row({"single GA (same total pop)",
                   stats::Table::num(r.best_objective, 0), "1",
                   std::to_string(r.evaluations)});
  }
  table.print();
  std::printf("\nExpected shape ([29]): merging-island performance is "
              "comparable to (within a few %% of) the alternatives; island "
              "count shrinks below 6.\nft10 optimum: 930.\n");
  return 0;
}
