// Micro-benchmarks: the observability hot path. Two layers:
//   - primitive costs: one Counter::add / Histogram::record / Span on
//     the write path (the per-event price quoted in
//     docs/observability.md);
//   - the end-to-end gate: a decode-heavy engine run with metrics
//     enabled vs disabled via the obs kill switch, same process, back
//     to back. ci.sh computes the enabled/disabled ratio and fails
//     above 2% — the "always-on metrics are free" acceptance bar.
#include <benchmark/benchmark.h>

#include <memory>

#include "src/ga/problem_registry.h"
#include "src/ga/solver.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sched/classics.h"

namespace {

using namespace psga;

void BM_ObsCounterAdd(benchmark::State& state) {
  obs::Counter counter;
  for (auto _ : state) {
    counter.add();
  }
  benchmark::DoNotOptimize(counter.value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsCounterAdd);

void BM_ObsHistogramRecord(benchmark::State& state) {
  obs::Histogram histogram;
  std::uint64_t value = 1;
  for (auto _ : state) {
    histogram.record(value);
    value = value * 2862933555777941757ULL + 3037000493ULL;  // cheap lcg
  }
  benchmark::DoNotOptimize(histogram.snapshot().count);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsHistogramRecord);

void BM_ObsSpanRecord(benchmark::State& state) {
  obs::Tracer tracer(1 << 20);
  for (auto _ : state) {
    obs::Span span(&tracer, "bench");
  }
  benchmark::DoNotOptimize(tracer.dropped());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsSpanRecord);

// The gate pair: one decode-heavy engine run per iteration, metrics
// writes live (1) or short-circuited by the kill switch (0). Both legs
// attach the registry — the difference is exactly the per-event write
// cost the always-on design claims is negligible.
void BM_DecodeRunObs(benchmark::State& state) {
  const bool metrics_on = state.range(0) != 0;
  const ga::ProblemPtr problem =
      ga::make_problem(sched::ft10().instance,
                       ga::JobShopProblem::Decoder::kGifflerThompson);
  obs::set_enabled(metrics_on);
  ga::RunResult last;
  for (auto _ : state) {
    ga::Solver solver = ga::Solver::build(
        ga::SolverSpec::parse("engine=simple pop=16 seed=7"), problem);
    last = solver.run(ga::StopCondition::generations(5));
    benchmark::DoNotOptimize(last.best_objective);
  }
  obs::set_enabled(true);
  if (metrics_on && last.metrics.has_value()) {
    const std::uint64_t* decoded = last.metrics->counter("eval.decoded_genomes");
    state.counters["decoded"] =
        decoded == nullptr ? 0.0 : static_cast<double>(*decoded);
  }
}
BENCHMARK(BM_DecodeRunObs)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"metrics"})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
