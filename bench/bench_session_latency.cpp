// Per-event replanning latency of psga::session under a seeded event
// trace — the number the session SLO story is about. Each iteration
// replays a fixed trace (same instance, same events, same seed) through
// a fresh Session and reports the p95 of the per-event wall times as the
// iteration time (UseManualTime), with the p50 riding along as a
// counter. warm:1 carries the previous population into each replan,
// warm:0 restarts cold — at a fixed generation budget the pair prices
// the repair/injection overhead (warm-start's payoff is fewer
// evaluations to a target, asserted in tests/test_session.cpp, not a
// faster fixed-budget event). ci.sh snapshots the p95 into
// BENCH_micro.json and gates >25% regressions like the decode kernels
// (tag: SessionEvent).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/ga/problem_registry.h"
#include "src/session/session.h"

namespace {

using namespace psga;

/// Nearest-rank percentile of per-event latencies (seconds).
double percentile(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples.size())));
  return samples[std::min(samples.size(), std::max<std::size_t>(rank, 1)) - 1];
}

void BM_SessionEventP95(benchmark::State& state) {
  const bool warm = state.range(0) != 0;
  const sched::JobShopInstance inst = ga::resolve_job_shop_instance("ft10");
  const std::vector<session::Event> trace = session::random_trace(inst, 20, 99);

  session::SessionConfig config;
  config.solver = "engine=simple pop=64";
  config.replan_generations = 25;
  config.seed = 17;
  config.warm.enabled = warm;

  double p50 = 0.0;
  for (auto _ : state) {
    session::Session session(inst, config, 1);
    session.open();
    std::vector<double> latencies;
    latencies.reserve(trace.size());
    for (const session::Event& event : trace) {
      latencies.push_back(session.apply(event).seconds);
    }
    state.SetIterationTime(percentile(latencies, 0.95));
    p50 = percentile(latencies, 0.50);
  }
  state.counters["p50_ms"] = p50 * 1e3;
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_SessionEventP95)
    ->ArgName("warm")
    ->Arg(0)
    ->Arg(1)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
