// E15 — Harmanani et al. [33] / Ghosn et al. [34]: non-preemptive open
// shop on a 5-machine Linux/MPI Beowulf cluster; neighboring islands share
// their best every GN generations and all islands broadcast every LN
// generations (GN << LN). Paper: fast convergence to good solutions, with
// speedup between 2.28x and 2.89x for large instances on 5 machines.
//
// Reproduction: the cluster-layer island GA (the MPI substitute of
// DESIGN.md §2) on 1..5 ranks at fixed per-rank budget; wall-clock for the
// same TOTAL work (5 islands' worth) versus rank count.
#include "bench/bench_util.h"
#include "src/ga/solver.h"
#include "src/ga/problem_registry.h"
#include "src/sched/generators.h"
#include "src/sched/open_shop.h"

int main() {
  using namespace psga;
  bench::header("E15 openshop_cluster", "Harmanani et al. [33], §III.D",
                "island GA over MPI on a 5-node Beowulf: speedup 2.28-2.89 "
                "for large instances; GN/LN dual-frequency migration");

  const auto instance = sched::random_open_shop(20, 10, 3309);
  auto problem = ga::make_problem(
      instance, sched::OpenShopDecoder::kLptTask);
  const auto lb = sched::open_shop_lower_bound(instance);

  // Total work: 5 islands x population x generations. With r ranks, each
  // rank runs 5/r islands' worth of population sequentially — the same
  // total work partitioned across "machines", like the Beowulf setup.
  const int generations = 25 * bench::scale();
  const int island_pop = 30;

  stats::Table table({"ranks", "best Cmax", "seconds", "speedup"});
  double base_s = 0.0;
  for (int ranks : {1, 2, 3, 4, 5}) {
    ga::ClusterIslandConfig cfg;
    cfg.ranks = ranks;
    cfg.base.population = island_pop * 5 / ranks;  // constant total effort
    cfg.base.termination.max_generations = generations;
    cfg.base.seed = 33;
    cfg.neighbor_interval = 5;    // GN
    cfg.broadcast_interval = 25;  // LN >> GN
    ga::RunResult r;
    const auto engine = ga::make_engine(problem, cfg);
    const double s = bench::time_seconds([&] { r = engine->run(); });
    if (ranks == 1) base_s = s;
    table.add_row({std::to_string(ranks),
                   stats::Table::num(r.best_objective, 0),
                   stats::Table::num(s, 3),
                   stats::Table::num(base_s / s, 2) + "x"});
  }
  table.print();
  std::printf("\nTrivial lower bound: %lld. Expected shape ([33]): speedup "
              "grows with ranks but stays well below ideal (paper: "
              "2.28-2.89x on 5 machines) because migration epochs "
              "synchronize the ranks.\n",
              static_cast<long long>(lb));
  return 0;
}
