// E19 — Rashidi et al. [38]: hybrid flow shop with unrelated parallel
// machines, sequence-dependent setups and processor blocking; bi-objective
// (makespan + max tardiness) scalarized with island-specific weight pairs,
// each successive pair differing by a small deviation; conventional GA
// operators followed by a local search / Redirect step. Paper: the variant
// WITH local search + Redirect covers the Pareto set better than without.
//
// Reproduction: weighted islands sweeping the trade-off; Pareto front size
// and dominated-hypervolume proxy with and without the memetic step.
#include <algorithm>

#include "bench/bench_util.h"
#include "src/ga/solver.h"
#include "src/ga/local_search.h"
#include "src/ga/problem_registry.h"
#include "src/sched/generators.h"

int main() {
  using namespace psga;
  bench::header("E19 pareto_islands", "Rashidi et al. [38], §III.D",
                "weighted-island bi-objective HFS (Cmax + Tmax) with "
                "blocking; local search + Redirect dominates the plain "
                "version");

  sched::HfsParams params;
  params.jobs = 15;
  params.machines_per_stage = {3, 3};
  params.unrelatedness = 2.0;  // unrelated parallel machines
  params.setup_hi = 10;        // sequence-dependent setups
  params.blocking = true;      // processor blocking
  sched::HybridFlowShopInstance inst =
      sched::random_hybrid_flow_shop(params, 3801);
  // Due dates for the tardiness criterion.
  std::vector<sched::Time> work(15, 0);
  for (int j = 0; j < 15; ++j) {
    for (int s = 0; s < inst.stages(); ++s) {
      work[static_cast<std::size_t>(j)] +=
          inst.proc[static_cast<std::size_t>(s)][static_cast<std::size_t>(j)][0];
    }
  }
  sched::assign_due_dates(inst.attrs, work, 2.2, 1, 38);

  const int islands = 6;
  const int generations = 25 * bench::scale();

  auto pareto_points = [&](bool memetic) {
    ga::IslandGaConfig cfg;
    cfg.islands = islands;
    cfg.base.population = 20;
    cfg.base.termination.max_generations = generations;
    cfg.base.seed = 38;
    cfg.migration.interval = 6;
    // Island-specific weight pairs with small successive deviation ([38]).
    std::vector<std::shared_ptr<const ga::HybridFlowShopProblem>> problems;
    for (int i = 0; i < islands; ++i) {
      const double w = 0.1 + 0.8 * i / (islands - 1);
      sched::CompositeObjective obj;
      obj.terms = {{sched::Criterion::kMakespan, w},
                   {sched::Criterion::kMaxTardiness, 1.0 - w}};
      problems.push_back(ga::make_problem(inst, obj));
      cfg.per_island_problems.push_back(problems.back());
    }
    const auto engine = ga::make_engine(cfg.per_island_problems.front(), cfg);
    const ga::RunResult result = engine->run();

    // Collect (Cmax, Tmax) of every island's best, optionally refined by
    // local search + Redirect restarts.
    std::vector<std::pair<double, double>> points;
    par::Rng rng(97);
    for (int i = 0; i < islands; ++i) {
      ga::Genome g = result.islands->best_genome[static_cast<std::size_t>(i)];
      if (memetic) {
        ga::local_search_swap(*problems[static_cast<std::size_t>(i)], g,
                              150 * bench::scale(), rng);
        ga::Genome redirected = g;
        ga::redirect(redirected, rng);
        ga::local_search_swap(*problems[static_cast<std::size_t>(i)],
                              redirected, 150 * bench::scale(), rng);
        if (problems[static_cast<std::size_t>(i)]->objective(redirected) <
            problems[static_cast<std::size_t>(i)]->objective(g)) {
          g = redirected;
        }
      }
      points.emplace_back(problems[static_cast<std::size_t>(i)]->criterion_value(
                              g, sched::Criterion::kMakespan),
                          problems[static_cast<std::size_t>(i)]->criterion_value(
                              g, sched::Criterion::kMaxTardiness));
    }
    // Non-dominated filter.
    std::vector<std::pair<double, double>> front;
    for (const auto& p : points) {
      bool dominated = false;
      for (const auto& q : points) {
        if ((q.first <= p.first && q.second < p.second) ||
            (q.first < p.first && q.second <= p.second)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) front.push_back(p);
    }
    std::sort(front.begin(), front.end());
    front.erase(std::unique(front.begin(), front.end()), front.end());
    return front;
  };

  const auto plain = pareto_points(false);
  const auto memetic = pareto_points(true);

  // Dominated hypervolume against a shared nadir: the standard coverage
  // indicator (larger = better front).
  std::pair<double, double> nadir{0.0, 0.0};
  for (const auto& f : {plain, memetic}) {
    for (const auto& p : f) {
      nadir.first = std::max(nadir.first, p.first * 1.1);
      nadir.second = std::max(nadir.second, p.second * 1.1 + 1.0);
    }
  }

  stats::Table table({"variant", "front size", "hypervolume (vs shared nadir)"});
  table.add_row({"islands only", std::to_string(plain.size()),
                 stats::Table::num(stats::hypervolume_2d(plain, nadir), 0)});
  table.add_row({"+ local search + Redirect", std::to_string(memetic.size()),
                 stats::Table::num(stats::hypervolume_2d(memetic, nadir), 0)});
  table.print();

  std::printf("\nPareto points (islands + local search):\n");
  for (const auto& [cmax, tmax] : memetic) {
    std::printf("  Cmax = %6.0f   Tmax = %6.0f\n", cmax, tmax);
  }
  std::printf("\nExpected shape ([38]): the memetic variant's front weakly "
              "dominates (lower mean objective sum).\n");
  return 0;
}
