// E14 — Kokosiński & Studzienny [32]: open shop GA with permutation-with-
// repetition chromosomes decoded by the LPT-Task / LPT-Machine greedy
// heuristics, 2-tournament selection, linear-order crossover, swap/invert
// mutation with constant or variable probability; the island version sent
// best emigrants to ALL other islands (all-to-all). Paper: the
// parallelization did NOT reveal obvious advantages — a negative result.
//
// Reproduction: the full operator matrix serially, then single GA vs
// all-to-all island GA at equal budget, showing the near-tie the paper
// reports.
#include "bench/bench_util.h"
#include "src/ga/solver.h"
#include "src/ga/problem_registry.h"
#include "src/ga/registry.h"
#include "src/sched/generators.h"
#include "src/sched/open_shop.h"

int main() {
  using namespace psga;
  bench::header("E14 openshop_lpt", "Kokosiński & Studzienny [32], §III.D",
                "LPT-Task/LPT-Machine decoders; all-to-all island migration "
                "shows NO obvious advantage over the serial GA");

  const auto instance = sched::random_open_shop(10, 10, 3207);
  const auto lb = sched::open_shop_lower_bound(instance);
  const int generations = 30 * bench::scale();

  // Operator matrix: decoder x mutation schedule.
  stats::Table matrix({"decoder", "mutation", "schedule", "best Cmax"});
  for (auto decoder :
       {sched::OpenShopDecoder::kLptTask, sched::OpenShopDecoder::kLptMachine}) {
    for (const char* mutation : {"swap", "inversion"}) {
      for (bool variable : {false, true}) {
        auto problem = ga::make_problem(instance, decoder);
        ga::GaConfig cfg;
        cfg.population = 60;
        cfg.termination.max_generations = generations;
        cfg.seed = 32;
        cfg.ops.selection = ga::make_selection("tournament2");  // [32]
        cfg.ops.crossover = ga::make_crossover("two-point");
        cfg.ops.mutation = ga::make_mutation(mutation);
        cfg.ops.mutation_rate = 0.4;
        if (variable) cfg.ops.mutation_rate_final = 0.05;
        const auto engine = ga::make_engine(problem, cfg);
        matrix.add_row(
            {decoder == sched::OpenShopDecoder::kLptTask ? "LPT-Task"
                                                         : "LPT-Machine",
             mutation, variable ? "variable" : "constant",
             stats::Table::num(engine->run().best_objective, 0)});
      }
    }
  }
  matrix.print();

  // Serial vs all-to-all island at equal total budget, several seeds.
  std::vector<double> serial_finals;
  std::vector<double> island_finals;
  auto problem = ga::make_problem(
      instance, sched::OpenShopDecoder::kLptTask);
  for (int rep = 0; rep < 4 * bench::scale(); ++rep) {
    ga::GaConfig cfg;
    cfg.population = 80;
    cfg.termination.max_generations = generations;
    cfg.seed = 500 + 13 * rep;
    const auto serial = ga::make_engine(problem, cfg);
    serial_finals.push_back(serial->run().best_objective);

    ga::IslandGaConfig icfg;
    icfg.islands = 4;
    icfg.base = cfg;
    icfg.base.population = 20;
    icfg.migration.topology = ga::Topology::kFullyConnected;  // all-to-all
    icfg.migration.policy = ga::MigrationPolicy::kBestReplaceRandom;
    icfg.migration.interval = 5;
    const auto island = ga::make_engine(problem, icfg);
    island_finals.push_back(island->run().best_objective);
  }
  stats::Table verdict({"configuration", "mean best Cmax", "min best Cmax"});
  verdict.add_row({"serial GA", stats::Table::num(stats::mean(serial_finals), 1),
                   stats::Table::num(stats::min_of(serial_finals), 0)});
  verdict.add_row({"all-to-all island GA",
                   stats::Table::num(stats::mean(island_finals), 1),
                   stats::Table::num(stats::min_of(island_finals), 0)});
  verdict.print();
  std::printf("\nTrivial lower bound: %lld. Expected shape ([32]): the two "
              "rows are close — the paper's (negative) finding that this "
              "parallelization gave no clear advantage.\n",
              static_cast<long long>(lb));
  return 0;
}
