// Ablation — job-shop decoder choice. The survey's Section III.A
// distinguishes the DIRECT encoding (decoded semi-actively), the
// Giffler–Thompson ACTIVE decoding ([17][21][26]) and the INDIRECT
// dispatching-rule encoding ([12]). Same GA budget, three decoders.
#include "bench/bench_util.h"
#include "src/ga/problem_registry.h"
#include "src/ga/solver.h"
#include "src/sched/classics.h"

int main() {
  using namespace psga;
  bench::header("Ablation decoders", "Survey §III.A encodings",
                "direct semi-active vs GT active vs indirect rule-sequence "
                "decoding at equal GA budget");

  stats::Table table({"instance", "optimum", "semi-active", "GT active",
                      "rule sequence"});
  for (const auto* classic :
       {&sched::ft06(), &sched::ft10(), &sched::ft20(), &sched::la01()}) {
    auto run = [&](ga::ProblemPtr problem) {
      ga::GaConfig cfg;
      cfg.population = 60;
      cfg.termination.max_generations = 60 * bench::scale();
      cfg.seed = 27;
      const auto engine = ga::make_engine(std::move(problem), cfg);
      return engine->run().best_objective;
    };
    const double semi = run(ga::make_problem(
        classic->instance, ga::JobShopProblem::Decoder::kOperationBased));
    const double active = run(ga::make_problem(
        classic->instance, ga::JobShopProblem::Decoder::kGifflerThompson));
    const double rules = run(
        ga::make_rule_sequence_problem(classic->instance));
    table.add_row({classic->name, std::to_string(classic->optimum),
                   stats::Table::num(semi, 0), stats::Table::num(active, 0),
                   stats::Table::num(rules, 0)});
  }
  table.print();
  std::printf("\nReading: GT active decoding dominates the semi-active "
              "direct encoding (the active-schedule space is smaller and "
              "always contains an optimum); the indirect rule encoding is "
              "coarse — robust but limited by its rule vocabulary, which "
              "is why the surveyed works favor direct encodings plus GT.\n");
  return 0;
}
