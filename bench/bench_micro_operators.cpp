// Micro-benchmarks: GA operator throughput (selection, crossover,
// mutation) on realistic chromosome sizes.
#include <benchmark/benchmark.h>

#include <numeric>

#include "src/ga/registry.h"
#include "src/par/rng.h"

namespace {

using namespace psga;
using namespace psga::ga;

GenomeTraits perm_traits(int n) {
  GenomeTraits t;
  t.seq_kind = SeqKind::kPermutation;
  t.seq_length = n;
  return t;
}

Genome random_perm(const GenomeTraits& traits, par::Rng& rng) {
  Genome g;
  g.seq.resize(static_cast<std::size_t>(traits.seq_length));
  std::iota(g.seq.begin(), g.seq.end(), 0);
  rng.shuffle(g.seq);
  return g;
}

void BM_Crossover(benchmark::State& state, const char* name) {
  const CrossoverPtr cx = make_crossover(name);
  const GenomeTraits traits = perm_traits(static_cast<int>(state.range(0)));
  par::Rng rng(1);
  const Genome a = random_perm(traits, rng);
  const Genome b = random_perm(traits, rng);
  Genome c1;
  Genome c2;
  for (auto _ : state) {
    cx->cross(a, b, traits, c1, c2, rng);
    benchmark::DoNotOptimize(c1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_Crossover, ox, "ox")->Arg(20)->Arg(100);
BENCHMARK_CAPTURE(BM_Crossover, pmx, "pmx")->Arg(20)->Arg(100);
BENCHMARK_CAPTURE(BM_Crossover, cycle, "cycle")->Arg(20)->Arg(100);
BENCHMARK_CAPTURE(BM_Crossover, jox, "jox")->Arg(20)->Arg(100);
BENCHMARK_CAPTURE(BM_Crossover, ppx, "ppx")->Arg(20)->Arg(100);
BENCHMARK_CAPTURE(BM_Crossover, two_point, "two-point")->Arg(20)->Arg(100);

void BM_Mutation(benchmark::State& state, const char* name) {
  const MutationPtr mut = make_mutation(name);
  const GenomeTraits traits = perm_traits(static_cast<int>(state.range(0)));
  par::Rng rng(2);
  Genome g = random_perm(traits, rng);
  for (auto _ : state) {
    mut->mutate(g, traits, rng);
    benchmark::DoNotOptimize(g);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_Mutation, swap, "swap")->Arg(100);
BENCHMARK_CAPTURE(BM_Mutation, shift, "shift")->Arg(100);
BENCHMARK_CAPTURE(BM_Mutation, inversion, "inversion")->Arg(100);
BENCHMARK_CAPTURE(BM_Mutation, scramble, "scramble")->Arg(100);

void BM_Selection(benchmark::State& state, const char* name) {
  const SelectionPtr sel = make_selection(name);
  par::Rng rng(3);
  std::vector<double> fitness(static_cast<std::size_t>(state.range(0)));
  for (auto& f : fitness) f = rng.uniform(0.1, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sel->pick(fitness, rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_Selection, roulette, "roulette")->Arg(100)->Arg(1000);
BENCHMARK_CAPTURE(BM_Selection, tournament2, "tournament2")->Arg(100)->Arg(1000);
BENCHMARK_CAPTURE(BM_Selection, rank, "rank")->Arg(100);

void BM_SusPickMany(benchmark::State& state) {
  StochasticUniversalSelection sel;
  par::Rng rng(4);
  std::vector<double> fitness(256);
  for (auto& f : fitness) f = rng.uniform(0.1, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sel.pick_many(fitness, 256, rng));
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_SusPickMany);

}  // namespace

BENCHMARK_MAIN();
