// Ablation — operator grid. The survey's Section III.A catalogues the
// permutation operator families; this ablation quantifies how much the
// crossover/mutation choice matters on a fixed flow-shop budget (the
// design-choice question behind the heterogeneous-island strategies of
// [26] and [30]).
#include "bench/bench_util.h"
#include "src/ga/problem_registry.h"
#include "src/ga/registry.h"
#include "src/ga/solver.h"
#include "src/sched/taillard.h"

int main() {
  using namespace psga;
  bench::header("Ablation operators", "Survey §III.A operator catalogue",
                "sensitivity of final quality to crossover x mutation on a "
                "fixed budget (ta001)");

  const auto bench_entry = sched::taillard_20x5().front();
  auto problem =
      ga::make_problem(sched::make_taillard(bench_entry));
  const double reference = static_cast<double>(bench_entry.best_known);
  const int replications = 3 * bench::scale();

  stats::Table table({"crossover", "mutation", "mean RPD (%)", "min Cmax"});
  for (const auto& cx : ga::crossover_names(ga::SeqKind::kPermutation)) {
    for (const auto& mut : ga::sequence_mutation_names()) {
      std::vector<double> finals;
      for (int rep = 0; rep < replications; ++rep) {
        ga::GaConfig cfg;
        cfg.population = 60;
        cfg.termination.max_generations = 60 * bench::scale();
        cfg.seed = 2600 + 7 * rep;
        cfg.ops.selection = ga::make_selection("tournament2");
        cfg.ops.crossover = ga::make_crossover(cx);
        cfg.ops.mutation = ga::make_mutation(mut);
        const auto engine = ga::make_engine(problem, cfg);
        finals.push_back(engine->run().best_objective);
      }
      table.add_row({cx, mut,
                     stats::Table::num(stats::mean_rpd(finals, reference), 2),
                     stats::Table::num(stats::min_of(finals), 0)});
    }
  }
  table.print();
  std::printf("\nReading: most combinations converge to the same local "
              "optimum at this budget, a few escape it (and a few trail); "
              "that spread — which operator pairs with which landscape — "
              "is exactly the payoff heterogeneous-island designs "
              "exploit.\n");
  return 0;
}
