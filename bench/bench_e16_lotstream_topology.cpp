// E16 — Defersha & Chen [35]: coarse-grain GA for flexible flow shop with
// lot streaming (unequal consistent sublots), k-way tournament, MPI on up
// to 48 cores. Paper findings: (a) the island GA reduces makespan vs the
// serial GA; (b) fully-connected topology outperforms ring and mesh;
// (c) of the policies random-replace-random / best-replace-random /
// best-replace-worst, the GA is not very sensitive but best-replace-random
// is slightly better.
//
// Reproduction: the same sweeps on a generated lot-streaming instance,
// replicated over seeds — declared as exp::SweepSpec grids and run by the
// sweep runner. The generated instance is a spec token
// (problem=lot-streaming + a gen: instance), so the grids need no custom
// resolver and the same strings work in a .sweep file.
#include <cstdio>
#include <iostream>
#include <string>

#include "src/exp/aggregate.h"
#include "src/exp/report.h"
#include "src/exp/sweep_runner.h"
#include "src/exp/sweep_spec.h"

int main() {
  using namespace psga;
  exp::bench_header("E16 lotstream_topology", "Defersha & Chen [35], §III.D",
                    "island GA reduces lot-streaming FFS makespan; fully "
                    "connected topology best; best-replace-random slightly "
                    "better policy");

  const int generations = 25 * exp::bench_scale();
  const int replications = 3 * exp::bench_scale();

  exp::SweepOptions options;

  // @crn=on pairs every configuration on the same seed series (the
  // common-random-numbers design the hand-rolled loops used), so the
  // row-vs-row comparisons isolate the configuration effect.
  const std::string budget =
      "problem=lot-streaming "
      "instance=gen:jobs=10,stages=2x3x2,sublots=3,seed=3501 @crn=on "
      "@generations=" +
      std::to_string(generations) + " ";
  auto study = [&](const std::string& name, const std::string& grid,
                   int reps) {
    exp::SweepSpec sweep = exp::SweepSpec::parse(
        grid + " sel=tournament3 " + budget + "@reps=" +
        std::to_string(reps));  // k-way tournament as in [35]
    sweep.name = name;
    exp::print_summary(exp::run_sweep(std::move(sweep), options), std::cout);
  };

  // (a) serial vs island at total population 120.
  study("serial vs island",
        "{engine=simple pop=120,"
        "engine=island islands=6 pop=20 topology=full policy=best-random "
        "interval=5} @seed=9000",
        replications);
  std::printf("Expected ([35]): the island row improves on the serial GA.\n\n");

  // (b) topology sweep.
  study("topology",
        "engine=island islands=6 pop=20 policy=best-random interval=5 "
        "topology={ring,grid,full} @seed=7000",
        replications);
  std::printf("Expected ([35]): fully connected (full) lowest.\n\n");

  // (c) policy sweep — more replications: the differences are small and
  // [35]'s finding is precisely that the GA is not very sensitive here.
  study("policy",
        "engine=island islands=6 pop=20 topology=full interval=5 "
        "policy={random-random,best-random,best-worst} @seed=8000",
        2 * replications);
  std::printf("Expected ([35]): rows close together — the low sensitivity "
              "to the migration policy is the finding; [35] saw a slight "
              "edge for best-replace-random.\n");
  return 0;
}
