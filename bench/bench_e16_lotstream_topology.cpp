// E16 — Defersha & Chen [35]: coarse-grain GA for flexible flow shop with
// lot streaming (unequal consistent sublots), k-way tournament, MPI on up
// to 48 cores. Paper findings: (a) the island GA reduces makespan vs the
// serial GA; (b) fully-connected topology outperforms ring and mesh;
// (c) of the policies random-replace-random / best-replace-random /
// best-replace-worst, the GA is not very sensitive but best-replace-random
// is slightly better.
//
// Reproduction: the same sweeps on a generated lot-streaming instance,
// replicated over seeds.
#include "bench/bench_util.h"
#include "src/ga/solver.h"
#include "src/ga/problems.h"
#include "src/ga/registry.h"
#include "src/sched/generators.h"

int main() {
  using namespace psga;
  bench::header("E16 lotstream_topology", "Defersha & Chen [35], §III.D",
                "island GA reduces lot-streaming FFS makespan; fully "
                "connected topology best; best-replace-random slightly "
                "better policy");

  sched::LotStreamParams params;
  params.jobs = 10;
  params.machines_per_stage = {2, 3, 2};
  params.sublots = 3;
  auto problem = std::make_shared<ga::LotStreamingProblem>(
      sched::random_lot_streaming(params, 3501));

  const int generations = 25 * bench::scale();
  const int replications = 3 * bench::scale();

  auto run_island = [&](ga::Topology topology, ga::MigrationPolicy policy,
                        std::uint64_t seed) {
    ga::IslandGaConfig cfg;
    cfg.islands = 6;
    cfg.base.population = 20;
    cfg.base.termination.max_generations = generations;
    cfg.base.seed = seed;
    cfg.base.ops.selection = ga::make_selection("tournament3");  // k-way [35]
    cfg.migration.topology = topology;
    cfg.migration.policy = policy;
    cfg.migration.interval = 5;
    const auto engine = ga::make_engine(problem, cfg);
    return engine->run().best_objective;
  };

  // (a) serial vs island.
  {
    std::vector<double> serial;
    std::vector<double> island;
    for (int rep = 0; rep < replications; ++rep) {
      ga::GaConfig cfg;
      cfg.population = 120;
      cfg.termination.max_generations = generations;
      cfg.seed = 9000 + 11 * rep;
      cfg.ops.selection = ga::make_selection("tournament3");
      const auto engine = ga::make_engine(problem, cfg);
      serial.push_back(engine->run().best_objective);
      island.push_back(run_island(ga::Topology::kFullyConnected,
                                  ga::MigrationPolicy::kBestReplaceRandom,
                                  9000 + 11 * rep));
    }
    stats::Table table({"configuration", "mean makespan", "min makespan"});
    table.add_row({"serial GA", stats::Table::num(stats::mean(serial), 1),
                   stats::Table::num(stats::min_of(serial), 0)});
    table.add_row({"island GA", stats::Table::num(stats::mean(island), 1),
                   stats::Table::num(stats::min_of(island), 0)});
    table.print();
  }

  // (b) topology sweep.
  {
    stats::Table table({"topology", "mean makespan"});
    for (const auto& [name, topo] :
         std::vector<std::pair<std::string, ga::Topology>>{
             {"ring", ga::Topology::kRing},
             {"mesh", ga::Topology::kGrid},
             {"fully connected", ga::Topology::kFullyConnected}}) {
      std::vector<double> finals;
      for (int rep = 0; rep < replications; ++rep) {
        finals.push_back(run_island(topo,
                                    ga::MigrationPolicy::kBestReplaceRandom,
                                    7000 + 13 * rep));
      }
      table.add_row({name, stats::Table::num(stats::mean(finals), 1)});
    }
    table.print();
    std::printf("Expected ([35]): fully connected lowest.\n\n");
  }

  // (c) policy sweep — more replications: the differences are small and
  // [35]'s finding is precisely that the GA is not very sensitive here.
  {
    stats::Table table({"migration policy", "mean makespan"});
    for (const auto& [name, policy] :
         std::vector<std::pair<std::string, ga::MigrationPolicy>>{
             {"random-replace-random", ga::MigrationPolicy::kRandomReplaceRandom},
             {"best-replace-random", ga::MigrationPolicy::kBestReplaceRandom},
             {"best-replace-worst", ga::MigrationPolicy::kBestReplaceWorst}}) {
      std::vector<double> finals;
      for (int rep = 0; rep < 2 * replications; ++rep) {
        finals.push_back(
            run_island(ga::Topology::kFullyConnected, policy, 8000 + 17 * rep));
      }
      table.add_row({name, stats::Table::num(stats::mean(finals), 1)});
    }
    table.print();
    std::printf("Expected ([35]): rows close together — the low sensitivity "
                "to the migration policy is the finding; [35] saw a slight "
                "edge for best-replace-random.\n");
  }
  return 0;
}
