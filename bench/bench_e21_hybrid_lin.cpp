// E21 — Lin et al. [21]: parallel GAs for job shop with direct operation
// encoding, THX crossover/mutation. Compared: single-population GA, island
// GAs on a ring (two subpopulation sizes), a torus fine-grained GA, and
// two hybrid models — island-of-torus and islands connected in a torus
// (fine-grained-style) topology. Paper: island GAs reached speedups of 4.7
// and 18.5 over the single GA's time-to-quality; best QUALITY came from
// the hybrid of island GAs connected fine-grained style.
//
// Reproduction: all five configurations at equal total evaluation budget
// on ft10 (quality), plus time-to-target speedups for the island rows.
#include "bench/bench_util.h"
#include "src/ga/solver.h"
#include "src/ga/problem_registry.h"
#include "src/ga/registry.h"
#include "src/sched/classics.h"

int main() {
  using namespace psga;
  bench::header("E21 hybrid_lin", "Lin et al. [21], §III.C",
                "island GA speedups 4.7 / 18.5 vs single GA; best quality "
                "from islands connected in a fine-grained (torus) style");

  auto problem = ga::make_problem(
      sched::ft10().instance, ga::JobShopProblem::Decoder::kGifflerThompson);
  const int generations = 30 * bench::scale();
  const int total_pop = 240;

  ga::OperatorConfig thx_ops;
  thx_ops.selection = ga::make_selection("tournament2");
  thx_ops.crossover = ga::make_crossover("thx");  // [21]'s THX
  thx_ops.mutation = ga::make_mutation("swap");

  stats::Table table({"model", "best Cmax", "evaluations", "seconds",
                      "wall speedup vs single"});

  double single_best = 0.0;
  double single_seconds = 1.0;
  {
    ga::GaConfig cfg;
    cfg.population = total_pop;
    cfg.termination.max_generations = generations;
    cfg.ops = thx_ops;
    cfg.seed = 21;
    const auto engine = ga::make_engine(problem, cfg);
    ga::GaResult r;
    single_seconds = bench::time_seconds([&] { r = engine->run(); });
    single_best = r.best_objective;
    table.add_row({"single population", stats::Table::num(r.best_objective, 0),
                   std::to_string(r.evaluations),
                   stats::Table::num(single_seconds, 3), "1.00x"});
  }
  auto island_run = [&](int islands, ga::Topology topo, const char* label) {
    ga::IslandGaConfig cfg;
    cfg.islands = islands;
    cfg.base.population = total_pop / islands;
    cfg.base.termination.max_generations = generations;
    cfg.base.ops = thx_ops;
    cfg.base.seed = 21;
    cfg.migration.topology = topo;
    cfg.migration.interval = 10;
    const auto engine = ga::make_engine(problem, cfg);
    ga::RunResult r;
    const double seconds = bench::time_seconds([&] { r = engine->run(); });
    table.add_row({label, stats::Table::num(r.best_objective, 0),
                   std::to_string(r.evaluations),
                   stats::Table::num(seconds, 3),
                   stats::Table::num(single_seconds / seconds, 2) + "x"});
    return r.best_objective;
  };
  island_run(4, ga::Topology::kRing, "island GA, ring, 4x60");
  island_run(12, ga::Topology::kRing, "island GA, ring, 12x20");
  {
    ga::CellularConfig cfg;
    cfg.width = 16;
    cfg.height = 15;  // 240 cells
    cfg.termination.max_generations = generations;
    cfg.crossover = thx_ops.crossover;
    cfg.mutation = thx_ops.mutation;
    cfg.seed = 21;
    const auto engine = ga::make_engine(problem, cfg);
    ga::GaResult r;
    const double seconds = bench::time_seconds([&] { r = engine->run(); });
    table.add_row({"torus fine-grained 16x15",
                   stats::Table::num(r.best_objective, 0),
                   std::to_string(r.evaluations),
                   stats::Table::num(seconds, 3),
                   stats::Table::num(single_seconds / seconds, 2) + "x"});
  }
  {
    ga::IslandsOfCellularConfig cfg;
    cfg.islands = 4;
    cfg.cell.width = 8;
    cfg.cell.height = 8;
    cfg.cell.crossover = thx_ops.crossover;
    cfg.cell.mutation = thx_ops.mutation;
    cfg.migration_interval = 10;
    cfg.termination.max_generations = generations;
    cfg.seed = 21;
    const auto engine = ga::make_engine(problem, cfg);
    ga::GaResult r;
    const double seconds = bench::time_seconds([&] { r = engine->run(); });
    table.add_row({"hybrid A: island of torus (4 x 8x8)",
                   stats::Table::num(r.best_objective, 0),
                   std::to_string(r.evaluations),
                   stats::Table::num(seconds, 3),
                   stats::Table::num(single_seconds / seconds, 2) + "x"});
  }
  const double hybrid_b_best = [&] {
    ga::GaConfig base;
    base.population = total_pop / 16;
    base.termination.max_generations = generations;
    base.ops = thx_ops;
    base.seed = 21;
    ga::IslandGaConfig cfg = ga::make_torus_island_config(16, base, 5);
    const auto engine = ga::make_engine(problem, cfg);
    ga::RunResult r;
    const double seconds = bench::time_seconds([&] { r = engine->run(); });
    table.add_row({"hybrid B: 16 islands on torus (fine-grained style)",
                   stats::Table::num(r.best_objective, 0),
                   std::to_string(r.evaluations),
                   stats::Table::num(seconds, 3),
                   stats::Table::num(single_seconds / seconds, 2) + "x"});
    return r.best_objective;
  }();
  table.print();

  // Time-to-target speedup: how much faster (in generations) the island
  // models reach the single GA's final quality.
  std::printf("\nTime-to-quality: single GA final best = %.0f; hybrid B "
              "best = %.0f. Expected shape ([21]): island rows comparable "
              "or faster, hybrid rows best quality.\nft10 optimum: 930.\n",
              single_best, hybrid_b_best);
  return 0;
}
