// E03 — Somani & Singh [16]: topological-sort GA on CUDA; speedup grows
// with problem size, ~9x for large instances vs the sequential GA.
//
// Reproduction: master-slave wall-clock speedup vs the serial engine as
// the job-shop instance grows. Small instances are overhead-bound (low
// speedup), large instances approach the worker count — the paper's shape.
#include "bench/bench_util.h"
#include "src/ga/solver.h"
#include "src/ga/problem_registry.h"
#include "src/sched/generators.h"

int main() {
  using namespace psga;
  bench::header("E03 masterslave_scaling", "Somani & Singh [16], §III.B",
                "parallel GA ~9x faster than sequential for LARGE problems; "
                "smaller gains on small problems");

  const int workers = 8;
  par::ThreadPool pool(workers);

  stats::Table table({"jobs x machines", "serial s", "parallel s",
                      "speedup", "efficiency"});
  struct Case {
    int jobs;
    int machines;
  };
  for (const Case c : {Case{6, 6}, Case{15, 10}, Case{30, 15}, Case{50, 20}}) {
    auto problem = ga::make_problem(
        sched::random_job_shop(c.jobs, c.machines,
                               static_cast<std::uint64_t>(c.jobs) * 100 + 7),
        ga::JobShopProblem::Decoder::kGifflerThompson);
    ga::GaConfig cfg;
    cfg.population = 64;
    cfg.termination.max_generations = 4 * bench::scale();
    cfg.seed = 3;

    double serial_s = 0.0;
    double parallel_s = 0.0;
    {
      const auto serial = ga::make_engine(problem, cfg);
      serial_s = bench::time_seconds([&] { serial->run(); });
    }
    {
      const auto parallel = ga::make_master_slave_engine(problem, cfg, &pool);
      parallel_s = bench::time_seconds([&] { parallel->run(); });
    }
    const double speedup = serial_s / parallel_s;
    table.add_row({std::to_string(c.jobs) + "x" + std::to_string(c.machines),
                   stats::Table::num(serial_s, 3),
                   stats::Table::num(parallel_s, 3),
                   stats::Table::num(speedup, 2) + "x",
                   stats::Table::num(speedup / workers, 2)});
  }
  table.print();
  std::printf("\nExpected shape: speedup grows with instance size "
              "(paper: ~9x for large-scale problems).\n");
  return 0;
}
