// E06 — Huang et al. [24]: fuzzy flow shop with random keys, parameterized
// uniform crossover and immigration (a% elites + b% crossover + c% random),
// organized island-style in CUDA blocks. Paper: 19x speedup with CUDA on
// 200-job cases; the modified GA converges to high-agreement schedules.
//
// Reproduction: (1) quality — the [24]-style GA on a fuzzified 200-job
// flow shop improves mean agreement; (2) throughput — thread-parallel
// block evaluation scaling plus the SIMT model's CUDA-class prediction.
#include "bench/bench_util.h"
#include "src/ga/solver.h"
#include "src/ga/problem_registry.h"
#include "src/par/simt_model.h"
#include "src/sched/taillard.h"

int main() {
  using namespace psga;
  bench::header("E06 randomkeys_fuzzy", "Huang et al. [24], §III.D",
                "random-keys GA with immigration on fuzzy flow shop; 19x "
                "CUDA speedup at 200 jobs");

  const int jobs = 40 * bench::scale();  // paper: up to 200 jobs
  const auto crisp = sched::taillard_flow_shop(jobs, 10, 20050320);
  auto problem = ga::make_problem(
      sched::fuzzify(crisp.proc, 0.2, 1.6, 0.8));

  // a% best + b% crossover + c% random immigration, a+b+c = 100 ([24]).
  ga::IslandGaConfig cfg;
  cfg.islands = 4;  // "blocks" without inter-block migration
  cfg.migration.interval = 0;
  cfg.base.population = 64;
  cfg.base.elites = 6;                  // a = ~10%
  cfg.base.immigration_fraction = 0.1;  // c = 10%
  cfg.base.termination.max_generations = 60;
  cfg.base.ops.crossover = std::make_shared<ga::UniformKeyCrossover>(0.7);
  cfg.base.ops.mutation = std::make_shared<ga::KeyCreepMutation>();
  cfg.base.ops.selection = std::make_shared<ga::TournamentSelection>(2);
  cfg.base.seed = 24;

  const auto engine = ga::make_engine(problem, cfg);
  const auto result = engine->run();
  stats::Table quality({"metric", "initial", "final"});
  quality.add_row({"1 - mean agreement (minimized)",
                   stats::Table::num(result.history.front(), 4),
                   stats::Table::num(result.best_objective, 4)});
  quality.add_row({"mean agreement index",
                   stats::Table::num(1.0 - result.history.front(), 4),
                   stats::Table::num(1.0 - result.best_objective, 4)});
  quality.print();

  // Throughput: parallel fitness evaluation scaling.
  stats::Table scaling({"workers", "seconds", "speedup"});
  ga::GaConfig ms = cfg.base;
  ms.population = 256;
  ms.termination.max_generations = 8;
  double base_s = 0.0;
  for (int workers : {1, 4, 8, 16}) {
    par::ThreadPool pool(workers);
    const auto engine2 = ga::make_master_slave_engine(problem, ms, &pool);
    const double s = bench::time_seconds([&] { engine2->run(); });
    if (workers == 1) base_s = s;
    scaling.add_row({std::to_string(workers), stats::Table::num(s, 3),
                     stats::Table::num(base_s / s, 2) + "x"});
  }
  scaling.print();

  par::SimtModelParams gtx285;
  gtx285.lanes = 240;  // GTX 285
  par::SimtModel model(gtx285);
  std::printf("\nSIMT model (GTX285-class, 240 lanes): predicted %.1fx "
              "(paper: ~19x at 200 jobs).\n",
              model.speedup(256, 200.0));
  return 0;
}
