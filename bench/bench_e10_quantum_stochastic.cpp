// E10 — Gu et al. [28]: stochastic job shop (expected-value model) solved
// by a parallel quantum GA on a star-shaped island organization with
// penetration migration. Paper: better optimal/near-optimal solutions and
// faster convergence than a plain GA or a plain (single-population)
// quantum GA on large instances.
//
// Reproduction: three solvers at equal evaluation budget on a stochastic
// job shop — plain GA, single-island quantum GA, island quantum GA with
// penetration migration.
#include "bench/bench_util.h"
#include "src/ga/problem_registry.h"
#include "src/ga/registry.h"
#include "src/ga/solver.h"
#include "src/sched/generators.h"
#include "src/sched/stochastic.h"

int main() {
  using namespace psga;
  bench::header("E10 quantum_stochastic", "Gu et al. [28], §III.D",
                "island quantum GA beats plain GA and plain quantum GA on "
                "stochastic job shops (expected-value model)");

  const auto nominal = sched::random_job_shop(10, 8, 2009);
  auto shop = std::make_shared<sched::StochasticJobShop>(nominal, 0.25,
                                                         8 * bench::scale(), 7);
  auto problem = ga::make_problem(shop);

  const int generations = 150 * bench::scale();
  const int total_pop = 48;

  const int replications = 3;
  stats::Table table({"solver", "mean best E[Cmax]", "min best E[Cmax]"});

  // Plain GA — era-faithful operators (roulette + one-point + swap), the
  // kind of comparison GA available to [28] in 2009.
  {
    std::vector<double> finals;
    for (int rep = 0; rep < replications; ++rep) {
      ga::GaConfig cfg;
      cfg.population = total_pop;
      cfg.termination.max_generations = generations;
      cfg.seed = 100 + 31 * rep;
      cfg.ops.selection = ga::make_selection("roulette");
      cfg.ops.crossover = ga::make_crossover("one-point");
      cfg.ops.mutation = ga::make_mutation("swap");
      cfg.ops.mutation_rate = 0.1;
      const auto engine = ga::make_engine(problem, cfg);
      finals.push_back(engine->run().best_objective);
    }
    table.add_row({"plain GA", stats::Table::num(stats::mean(finals), 1),
                   stats::Table::num(stats::min_of(finals), 1)});
  }
  // Plain quantum GA (one island) and the parallel (4-island) quantum GA
  // with penetration migration, at the same evaluation budget.
  for (int islands : {1, 4}) {
    std::vector<double> finals;
    for (int rep = 0; rep < replications; ++rep) {
      ga::QuantumGaConfig cfg;
      cfg.islands = islands;
      cfg.population = total_pop / islands;
      cfg.generations = generations;
      cfg.migration_interval = 5;  // frequent penetration pays off here
      cfg.seed = 200 + 31 * rep + islands;
      const auto engine = ga::make_engine(problem, cfg);
      finals.push_back(engine->run().best_objective);
    }
    table.add_row({islands == 1 ? "quantum GA (1 island)"
                                : "parallel quantum GA (4 islands)",
                   stats::Table::num(stats::mean(finals), 1),
                   stats::Table::num(stats::min_of(finals), 1)});
  }
  table.print();
  std::printf("\nExpected shape ([28]): the island quantum GA attains the "
              "lowest expected makespan with competitive convergence.\n");
  return 0;
}
