// E23 — AitZai et al. [14][15] pair a parallel branch-and-bound with the
// (master-slave) GA for the job shop. This bench reproduces that pairing:
// the exact B&B certifies optima on small instances, the GA approximates
// them, and feeding the GA's result to the B&B as the initial incumbent
// prunes the exact search — the cooperation the papers advocate.
#include "bench/bench_util.h"
#include "src/ga/solver.h"
#include "src/ga/problem_registry.h"
#include "src/sched/branch_bound.h"
#include "src/sched/classics.h"
#include "src/sched/generators.h"

int main() {
  using namespace psga;
  bench::header("E23 bnb_vs_ga", "AitZai et al. [14][15], §III.B",
                "parallel B&B + GA cooperation for job shop: the GA finds "
                "near-optimal schedules fast, the B&B certifies them");

  par::ThreadPool pool(8);
  stats::Table table({"instance", "B&B optimum", "B&B nodes", "GA best",
                      "GA gap (%)", "B&B nodes w/ GA incumbent"});

  struct Entry {
    std::string name;
    sched::JobShopInstance inst;
  };
  std::vector<Entry> entries;
  for (int seed = 1; seed <= 3; ++seed) {
    entries.push_back({"rnd5x4-" + std::to_string(seed),
                       sched::random_job_shop(5, 4, 2300u + seed)});
  }
  entries.push_back({"ft06", sched::ft06().instance});

  for (const Entry& entry : entries) {
    sched::BranchBoundConfig cold;
    cold.max_nodes = 40'000'000;
    const auto exact =
        sched::parallel_branch_and_bound(entry.inst, cold, &pool);

    auto problem = ga::make_problem(
        entry.inst, ga::JobShopProblem::Decoder::kGifflerThompson);
    ga::GaConfig cfg;
    cfg.population = 64;
    cfg.termination.max_generations = 30 * bench::scale();
    cfg.seed = 23;
    const auto engine = ga::make_master_slave_engine(problem, cfg, &pool);
    const ga::GaResult approx = engine->run();

    sched::BranchBoundConfig warm = cold;
    warm.initial_upper_bound =
        static_cast<sched::Time>(approx.best_objective) + 1;
    const auto warmed =
        sched::parallel_branch_and_bound(entry.inst, warm, &pool);

    table.add_row(
        {entry.name,
         std::to_string(exact.best_makespan) +
             (exact.proven_optimal ? "" : "*"),
         std::to_string(exact.nodes_explored),
         stats::Table::num(approx.best_objective, 0),
         stats::Table::num(100.0 * (approx.best_objective -
                                    static_cast<double>(exact.best_makespan)) /
                               static_cast<double>(exact.best_makespan),
                           2),
         std::to_string(warmed.nodes_explored)});
  }
  table.print();
  std::printf("\nExpected shape ([14][15]): GA gaps near 0%% on these sizes; "
              "seeding the B&B with the GA incumbent cuts the explored node "
              "count. (* = node budget hit before optimality proof.)\n");
  return 0;
}
