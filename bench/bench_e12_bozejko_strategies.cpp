// E12 — Bożejko & Wodecki [30]: island GA for the flow shop with MSXF
// (multi-step crossover fusion) communication. Strategy grid: {same vs
// different start subpopulations} x {same vs different genetic operators}
// x {independent vs cooperative islands}. Paper: different starts +
// different operators + cooperation wins; ~7% improvement of distance to
// reference solutions and ~40% improvement of standard deviation vs the
// sequential GA.
//
// Reproduction: the eight strategy combinations on ta001, replicated;
// report mean RPD to best-known and its std dev, plus the sequential GA
// row the improvements are measured against.
#include "bench/bench_util.h"
#include "src/ga/solver.h"
#include "src/ga/problem_registry.h"
#include "src/ga/registry.h"
#include "src/sched/taillard.h"

int main() {
  using namespace psga;
  bench::header("E12 bozejko_strategies", "Bożejko & Wodecki [30], §III.D",
                "diff starts + diff operators + cooperation best; ~7% better "
                "distance to reference, ~40% better std dev vs serial GA");

  const auto bench_entry = sched::taillard_20x5().front();
  auto problem =
      ga::make_problem(sched::make_taillard(bench_entry));
  const double reference = static_cast<double>(bench_entry.best_known);

  const int generations = 30 * bench::scale();
  const int replications = 4 * bench::scale();
  const char* crossovers[] = {"ox", "pmx", "two-point", "cycle"};  // 4 ops [30]

  auto run_strategy = [&](bool same_start, bool same_ops, bool cooperative) {
    std::vector<double> finals;
    for (int rep = 0; rep < replications; ++rep) {
      ga::IslandGaConfig cfg;
      cfg.islands = 4;
      cfg.base.population = 24;
      cfg.base.termination.max_generations = generations;
      cfg.base.seed = 3000 + 7 * rep;
      cfg.identical_start = same_start;
      cfg.migration.interval = cooperative ? 5 : 0;
      if (!same_ops) {
        for (const char* cx : crossovers) {
          ga::OperatorConfig ops;
          ops.selection = ga::make_selection("tournament2");
          ops.crossover = ga::make_crossover(cx);
          ops.mutation = ga::make_mutation("swap");
          cfg.per_island_ops.push_back(ops);
        }
      }
      const auto engine = ga::make_engine(problem, cfg);
      finals.push_back(engine->run().best_objective);
    }
    return finals;
  };

  // Sequential baseline.
  std::vector<double> serial_finals;
  for (int rep = 0; rep < replications; ++rep) {
    ga::GaConfig cfg;
    cfg.population = 96;
    cfg.termination.max_generations = generations;
    cfg.seed = 3000 + 7 * rep;
    const auto engine = ga::make_engine(problem, cfg);
    serial_finals.push_back(engine->run().best_objective);
  }

  stats::Table table({"starts", "operators", "islands", "mean RPD (%)",
                      "std dev of Cmax"});
  table.add_row({"(sequential GA)", "-", "-",
                 stats::Table::num(stats::mean_rpd(serial_finals, reference), 2),
                 stats::Table::num(stats::stddev(serial_finals), 2)});
  for (bool same_start : {true, false}) {
    for (bool same_ops : {true, false}) {
      for (bool cooperative : {false, true}) {
        const auto finals = run_strategy(same_start, same_ops, cooperative);
        table.add_row({same_start ? "same" : "different",
                       same_ops ? "same" : "different",
                       cooperative ? "cooperative" : "independent",
                       stats::Table::num(stats::mean_rpd(finals, reference), 2),
                       stats::Table::num(stats::stddev(finals), 2)});
      }
    }
  }
  table.print();
  std::printf("\nExpected shape ([30]): the different/different/cooperative "
              "row has the lowest mean RPD and a clearly lower std dev than "
              "the sequential row.\n");
  return 0;
}
