// Ablation — diversity devices. The survey's introduction: "previous
// works in this area suggest to enlarge population size, increase
// mutation rate or hire niche penalty in selection to keep the diversity
// of GAs. However, any of them may raise the complexity of the algorithm
// and lead to more time consumption." This ablation quantifies exactly
// that trade: each diversity device vs its cost in wall-clock, at a fixed
// generation budget on ft10 — and contrasts them with the island model,
// the survey's structural answer to the same problem.
#include <set>

#include "bench/bench_util.h"
#include "src/ga/solver.h"
#include "src/ga/problem_registry.h"
#include "src/ga/registry.h"
#include "src/sched/classics.h"

int main() {
  using namespace psga;
  bench::header("Ablation diversity", "Survey §I diversity devices",
                "bigger population / higher mutation / niche penalty all "
                "cost time; the island model buys diversity structurally");

  auto problem = ga::make_problem(
      sched::ft10().instance, ga::JobShopProblem::Decoder::kGifflerThompson);
  const int generations = 60 * bench::scale();

  auto distinct = [](const ga::Engine& engine) {
    std::set<std::vector<int>> seen;
    for (int i = 0; i < engine.population_size(); ++i) {
      seen.insert(engine.individual(i).seq);
    }
    return seen.size();
  };

  stats::Table table({"configuration", "best Cmax", "distinct individuals",
                      "seconds"});

  auto run_simple = [&](const char* label, int population,
                        double mutation_rate, int niche_radius) {
    ga::GaConfig cfg;
    cfg.population = population;
    cfg.termination.max_generations = generations;
    cfg.seed = 41;
    cfg.ops.selection = ga::make_selection("roulette");
    cfg.ops.mutation_rate = mutation_rate;
    cfg.niche_radius = niche_radius;
    const auto engine = ga::make_engine(problem, cfg);
    engine->init();
    const double seconds = bench::time_seconds([&] {
      for (int g = 0; g < generations; ++g) engine->step();
    });
    table.add_row({label, stats::Table::num(engine->best_objective(), 0),
                   std::to_string(distinct(*engine)),
                   stats::Table::num(seconds, 3)});
  };

  run_simple("baseline (pop 60, mut 0.2)", 60, 0.2, 0);
  run_simple("enlarged population (pop 240)", 240, 0.2, 0);
  run_simple("raised mutation (0.6)", 60, 0.6, 0);
  run_simple("niche penalty (radius 40)", 60, 0.2, 40);

  {
    ga::IslandGaConfig cfg;
    cfg.islands = 4;
    cfg.base.population = 15;  // same total as baseline
    cfg.base.termination.max_generations = generations;
    cfg.base.seed = 41;
    cfg.base.ops.selection = ga::make_selection("roulette");
    cfg.migration.interval = 10;
    const auto engine = ga::make_engine(problem, cfg);
    ga::RunResult r;
    const double seconds = bench::time_seconds([&] { r = engine->run(); });
    table.add_row({"island model (4 x 15)",
                   stats::Table::num(r.best_objective, 0), "-",
                   stats::Table::num(seconds, 3)});
  }
  table.print();
  std::printf("\nReading (survey §I): every serial diversity device either "
              "multiplies wall-clock (population), slows convergence "
              "(mutation) or adds O(P^2) selection cost (niche penalty); "
              "the island model keeps diversity through isolation at no "
              "serial cost — and parallelizes.\n");
  return 0;
}
