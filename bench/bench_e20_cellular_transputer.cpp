// E20 — Tamaki et al. [20]: fine-grained (neighborhood-model) GA for the
// job shop on a Transputer MIMD array. Paper: 16 processors shorten the
// calculation time dramatically, but communication (no shared memory)
// keeps the reduction below the ideal level; the neighborhood model also
// suppresses premature convergence.
//
// Reproduction: (1) wall-clock of the cellular GA vs worker count — rising
// speedup that stays below ideal; (2) diversity: the cellular GA maintains
// more distinct individuals than a panmictic GA of equal size.
#include <set>

#include "bench/bench_util.h"
#include "src/ga/solver.h"
#include "src/ga/problem_registry.h"
#include "src/sched/classics.h"

int main() {
  using namespace psga;
  bench::header("E20 cellular_transputer", "Tamaki et al. [20], §III.C",
                "neighborhood-model GA on 16 Transputers: large but "
                "sub-ideal time reduction; premature convergence "
                "suppressed");

  auto problem = ga::make_problem(
      sched::ft10().instance, ga::JobShopProblem::Decoder::kGifflerThompson);

  ga::CellularConfig cfg;
  cfg.width = 16;
  cfg.height = 16;
  cfg.termination.max_generations = 8 * bench::scale();
  cfg.seed = 20;

  stats::Table table({"workers", "seconds", "speedup", "efficiency"});
  double base_s = 0.0;
  for (int workers : {1, 2, 4, 8, 16}) {
    par::ThreadPool pool(workers);
    const auto engine = ga::make_engine(problem, cfg, &pool);
    const double s = bench::time_seconds([&] { engine->run(); });
    if (workers == 1) base_s = s;
    table.add_row({std::to_string(workers), stats::Table::num(s, 3),
                   stats::Table::num(base_s / s, 2) + "x",
                   stats::Table::num(base_s / s / workers, 2)});
  }
  table.print();
  std::printf("Expected ([20]): speedup grows with workers but efficiency "
              "< 1 (the Transputer's communication penalty).\n\n");

  // Diversity comparison at the same budget.
  const auto cellular = ga::make_engine(problem, cfg);
  cellular->init();
  for (int g = 0; g < cfg.termination.max_generations; ++g) cellular->step();
  std::set<std::vector<int>> cellular_distinct;
  for (int c = 0; c < cellular->population_size(); ++c) {
    cellular_distinct.insert(cellular->individual(c).seq);
  }

  ga::GaConfig pan;
  pan.population = 256;
  pan.termination.max_generations = cfg.termination.max_generations;
  pan.seed = 20;
  const auto panmictic = ga::make_engine(problem, pan);
  panmictic->init();
  for (int g = 0; g < pan.termination.max_generations; ++g) panmictic->step();
  std::set<std::vector<int>> pan_distinct;
  for (int i = 0; i < panmictic->population_size(); ++i) {
    pan_distinct.insert(panmictic->individual(i).seq);
  }

  stats::Table diversity({"model", "population", "distinct individuals",
                          "best Cmax"});
  diversity.add_row({"cellular (16x16 torus)", "256",
                     std::to_string(cellular_distinct.size()),
                     stats::Table::num(cellular->best_objective(), 0)});
  diversity.add_row({"panmictic", "256", std::to_string(pan_distinct.size()),
                     stats::Table::num(panmictic->best_objective(), 0)});
  diversity.print();
  std::printf("\nExpected ([20]): the neighborhood model keeps more "
              "distinct individuals (diversity) at similar quality — the "
              "premature-convergence suppression it was designed for.\n");
  return 0;
}
