// E09 — Asadzadeh & Zamanifar [27]: agent-based parallel GA for job shop;
// 8 processor agents forming a virtual cube (each with 3 neighbors),
// roulette selection + PMX-style crossover. Paper: vs the serial
// agent-based GA, shorter schedule lengths AND faster convergence on
// large instances.
//
// Reproduction: 8-island hypercube GA vs equal-budget serial GA on ft10
// and ft20; report final makespan and the generation at which each run
// first reaches the serial GA's final level (convergence speed).
#include "bench/bench_util.h"
#include "src/ga/solver.h"
#include "src/ga/problem_registry.h"
#include "src/ga/registry.h"
#include "src/sched/classics.h"

int main() {
  using namespace psga;
  bench::header("E09 hypercube_agents", "Asadzadeh & Zamanifar [27], §III.D",
                "8 agents on a virtual cube: shorter schedules and faster "
                "convergence than the serial GA");

  stats::Table table({"instance", "serial best", "cube best",
                      "serial gens to final", "cube gens to serial level"});

  for (const auto* classic : {&sched::ft10(), &sched::ft20()}) {
    auto problem = ga::make_problem(
        classic->instance, ga::JobShopProblem::Decoder::kGifflerThompson);
    const int generations = 150 * bench::scale();

    ga::GaConfig base;
    base.population = 96;
    base.termination.max_generations = generations;
    base.seed = 27;
    base.ops.selection = ga::make_selection("roulette");  // [27]'s selection
    base.ops.crossover = ga::make_crossover("two-point");
    base.ops.mutation = ga::make_mutation("swap");
    base.ops.mutation_rate = 0.1;

    const auto serial = ga::make_engine(problem, base);
    const ga::GaResult rs = serial->run();

    ga::IslandGaConfig cube;
    cube.islands = 8;  // virtual cube: 3 neighbors each
    cube.base = base;
    cube.base.population = 12;
    cube.migration.topology = ga::Topology::kHypercube;
    cube.migration.interval = 5;
    const auto parallel = ga::make_engine(problem, cube);
    const ga::RunResult rc = parallel->run();

    auto first_reach = [](const std::vector<double>& history, double level) {
      for (std::size_t g = 0; g < history.size(); ++g) {
        if (history[g] <= level) return static_cast<int>(g);
      }
      return static_cast<int>(history.size());
    };

    table.add_row(
        {classic->name, stats::Table::num(rs.best_objective, 0),
         stats::Table::num(rc.best_objective, 0),
         std::to_string(first_reach(rs.history, rs.best_objective)),
         std::to_string(first_reach(rc.history, rs.best_objective))});
  }
  table.print();
  std::printf("\nExpected shape ([27]): cube best <= serial best, and the "
              "cube reaches the serial GA's final level in fewer "
              "generations.\n");
  return 0;
}
