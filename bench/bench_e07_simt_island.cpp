// E07 — Zajicek & Šucha [25]: homogeneous island GA entirely on the GPU
// (tournament selection, arithmetic crossover, Gaussian mutation) to avoid
// CPU-GPU transfers. Paper: 60-120x speedup vs the sequential CPU version.
//
// Reproduction: the same operator set on random keys; measured thread
// scaling of the all-islands-in-parallel engine, and the SIMT model's
// all-on-device prediction for a Tesla-class device, which lands in the
// paper's 60-120x window because the whole generation (not only fitness)
// runs on the device.
#include "bench/bench_util.h"
#include "src/ga/solver.h"
#include "src/ga/problem_registry.h"
#include "src/par/simt_model.h"
#include "src/sched/taillard.h"

int main() {
  using namespace psga;
  bench::header("E07 simt_island", "Zajicek & Šucha [25], §III.D",
                "all-on-GPU island GA: 60-120x vs sequential CPU");

  const auto crisp = sched::taillard_flow_shop(50, 10, 46702);
  auto problem = ga::make_random_key_problem(crisp);

  ga::IslandGaConfig cfg;
  cfg.islands = 16;  // many small islands, one per "block"
  cfg.base.population = 32;
  cfg.base.termination.max_generations = 12 * bench::scale();
  cfg.base.ops.selection = std::make_shared<ga::TournamentSelection>(2);
  cfg.base.ops.crossover = std::make_shared<ga::ArithmeticKeyCrossover>();
  cfg.base.ops.mutation = std::make_shared<ga::KeyCreepMutation>(0.1);
  cfg.base.seed = 25;
  cfg.migration.interval = 5;

  stats::Table table({"threads", "seconds", "speedup", "best Cmax"});
  double base_s = 0.0;
  for (int threads : {1, 2, 4, 8, 16, 24}) {
    par::ThreadPool pool(threads);
    const auto engine = ga::make_engine(problem, cfg, &pool);
    ga::RunResult r;
    const double s = bench::time_seconds([&] { r = engine->run(); });
    if (threads == 1) base_s = s;
    table.add_row({std::to_string(threads), stats::Table::num(s, 3),
                   stats::Table::num(base_s / s, 2) + "x",
                   stats::Table::num(r.best_objective, 0)});
  }
  table.print();

  // All-on-device model: a Tesla C1060 runs the *entire* generation in
  // parallel lanes with one launch per generation, against a scalar CPU.
  par::SimtModelParams tesla;
  tesla.lanes = 240;           // C1060
  tesla.divergence = 0.9;      // homogeneous kernels diverge little
  tesla.lane_slowdown = 2.5;   // simple arithmetic kernels
  tesla.serial_fraction = 0.0; // no host round-trips by design
  tesla.launch_overhead_us = 8.0;
  par::SimtModel model(tesla);
  const std::size_t per_gen = 16 * 32;  // individuals per generation
  std::printf("\nSIMT model, all-on-device generation of %zu evals: "
              "predicted %.0fx (paper: 60-120x).\n",
              per_gen, model.speedup(per_gen, 500.0));
  std::printf("Identical best Cmax across thread counts above demonstrates "
              "the deterministic island streams.\n");
  return 0;
}
