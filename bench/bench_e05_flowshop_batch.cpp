// E05 — Akhshabi et al. [18]: master-slave GA for the flow shop with
// partial-replacement selection, cycle crossover and swap mutation; fitness
// evaluations dispatched to slave processors in batches. Paper: up to 9x
// faster than the serial reference (a Lingo 8 run — substituted here by
// the serial engine + NEH reference; see DESIGN.md §2).
//
// Reproduction: the same operator set on ta001; serial vs batched parallel
// evaluation across worker counts, and solution quality vs NEH.
#include "bench/bench_util.h"
#include "src/ga/solver.h"
#include "src/ga/problem_registry.h"
#include "src/ga/registry.h"
#include "src/sched/heuristics.h"
#include "src/sched/taillard.h"

int main() {
  using namespace psga;
  bench::header("E05 flowshop_batch", "Akhshabi et al. [18], §III.B",
                "master-slave flow-shop GA up to 9x faster than the serial "
                "solver reference (cycle crossover + swap mutation)");

  // A large instance (100x20, Taillard-class size) so the fitness batch
  // is worth distributing; on ta001-sized decodes dispatch overhead wins.
  const auto instance = sched::taillard_flow_shop(100, 20, 1805);
  auto problem = ga::make_problem(instance);

  ga::GaConfig cfg;
  cfg.population = 400;
  cfg.termination.max_generations = 10 * bench::scale();
  cfg.seed = 5;
  cfg.ops.selection = ga::make_selection("roulette");
  cfg.ops.crossover = ga::make_crossover("cycle");  // [18]'s operator set
  cfg.ops.mutation = ga::make_mutation("swap");

  double serial_s = 0.0;
  double best = 0.0;
  {
    const auto serial = ga::make_engine(problem, cfg);
    ga::GaResult r;
    serial_s = bench::time_seconds([&] { r = serial->run(); });
    best = r.best_objective;
  }

  stats::Table table({"workers", "seconds", "speedup", "best Cmax"});
  table.add_row({"1 (serial)", stats::Table::num(serial_s, 3), "1.00x",
                 stats::Table::num(best, 0)});
  for (int workers : {2, 4, 8, 16}) {
    par::ThreadPool pool(workers);
    const auto parallel = ga::make_master_slave_engine(problem, cfg, &pool);
    ga::GaResult r;
    const double s = bench::time_seconds([&] { r = parallel->run(); });
    table.add_row({std::to_string(workers), stats::Table::num(s, 3),
                   stats::Table::num(serial_s / s, 2) + "x",
                   stats::Table::num(r.best_objective, 0)});
  }
  table.print();

  std::printf("\nReference point: NEH = %lld. The GA result is identical "
              "for every worker count (behavioural invariance of the "
              "master-slave model).\n",
              static_cast<long long>(sched::neh_makespan(instance)));
  std::printf("Note: the paper's 9x compared against a slow commercial "
              "solver (Lingo 8); thread scaling here shows the parallel-"
              "evaluation component of that gain.\n");
  return 0;
}
