// E08 — Park et al. [26]: hybrid GA for job shop with operation-based
// representation; population split into 2 or 4 subpopulations with
// different operator settings, synchronous ring migration. Paper: the
// island GA improved both the BEST and the AVERAGE solution vs the single
// GA on MT (FT), ORB and ABZ benchmarks.
//
// Reproduction: single GA vs 2-island vs 4-island (heterogeneous
// operators, ring migration) on the embedded FT family + Taillard-style
// substitutes for ABZ/ORB (DESIGN.md §2), at equal total evaluation
// budget; best and average over replications.
#include "bench/bench_util.h"
#include "src/ga/solver.h"
#include "src/ga/problem_registry.h"
#include "src/ga/registry.h"
#include "src/sched/classics.h"
#include "src/sched/generators.h"

int main() {
  using namespace psga;
  bench::header("E08 park_islands", "Park et al. [26], §III.D",
                "2/4 heterogeneous islands with ring migration improve both "
                "best and average solution vs the single-population GA");

  struct Entry {
    std::string name;
    sched::JobShopInstance instance;
  };
  std::vector<Entry> entries;
  for (const auto* c : sched::classic_instances()) {
    entries.push_back({c->name, c->instance});
  }
  entries.push_back({"rnd10x10a", sched::random_job_shop(10, 10, 2601)});
  entries.push_back({"rnd10x10b", sched::random_job_shop(10, 10, 2602)});

  const int replications = 3 * bench::scale();
  const int total_pop = 96;
  // Long runs with fitness-proportionate selection (the selection family
  // of the surveyed era): the single population converges prematurely,
  // which is precisely the failure mode the island model fixes.
  const int generations = 150 * bench::scale();

  stats::Table table({"instance", "single best", "single avg", "2-isl best",
                      "2-isl avg", "4-isl best", "4-isl avg"});

  for (const Entry& entry : entries) {
    auto problem = ga::make_problem(
        entry.instance, ga::JobShopProblem::Decoder::kGifflerThompson);

    auto run_config = [&](int islands, std::uint64_t seed) {
      if (islands == 1) {
        ga::GaConfig cfg;
        cfg.population = total_pop;
        cfg.termination.max_generations = generations;
        cfg.seed = seed;
        cfg.ops.selection = ga::make_selection("roulette");
        cfg.ops.crossover = ga::make_crossover("jox");
        cfg.ops.mutation = ga::make_mutation("swap");
        cfg.ops.mutation_rate = 0.1;
        const auto engine = ga::make_engine(problem, cfg);
        return engine->run().best_objective;
      }
      ga::IslandGaConfig cfg;
      cfg.islands = islands;
      cfg.base.population = total_pop / islands;
      cfg.base.termination.max_generations = generations;
      cfg.base.seed = seed;
      cfg.migration.topology = ga::Topology::kRing;  // [26]'s static ring
      cfg.migration.interval = 10;
      // Different settings per subpopulation ([26]: four crossovers, two
      // selections across islands).
      const char* crossovers[] = {"jox", "ppx", "thx", "two-point"};
      const char* selections[] = {"roulette", "elitist-roulette"};
      for (int i = 0; i < islands; ++i) {
        ga::OperatorConfig ops;
        ops.selection = ga::make_selection(selections[i % 2]);
        ops.crossover = ga::make_crossover(crossovers[i % 4]);
        ops.mutation = ga::make_mutation(i % 2 == 0 ? "swap" : "shift");
        ops.mutation_rate = 0.1;
        cfg.per_island_ops.push_back(ops);
      }
      const auto engine = ga::make_engine(problem, cfg);
      return engine->run().best_objective;
    };

    auto replicate = [&](int islands) {
      std::vector<double> bests;
      for (int r = 0; r < replications; ++r) {
        bests.push_back(run_config(islands, 1000 + 17 * r));
      }
      return bests;
    };

    const auto single = replicate(1);
    const auto two = replicate(2);
    const auto four = replicate(4);
    table.add_row({entry.name, stats::Table::num(stats::min_of(single), 0),
                   stats::Table::num(stats::mean(single), 1),
                   stats::Table::num(stats::min_of(two), 0),
                   stats::Table::num(stats::mean(two), 1),
                   stats::Table::num(stats::min_of(four), 0),
                   stats::Table::num(stats::mean(four), 1)});
  }
  table.print();
  std::printf("\nExpected shape ([26]): island columns <= single columns for "
              "both best and average.\n");
  return 0;
}
