// E18 — Belkadi et al. [37]: island GA for the hybrid flow shop with an
// assignment+sequencing genome. Paper findings: (a) connection topology
// (ring vs 2-D grid) and replacement strategy (best vs random) do NOT
// significantly change the makespan; (b) splitting a fixed total
// population across more subpopulations degrades quality; (c) the
// migration interval is the decisive parameter — more frequent migration
// improves quality.
//
// Reproduction: the three sweeps on a generated HFS instance, replicated.
#include "bench/bench_util.h"
#include "src/ga/solver.h"
#include "src/ga/problems.h"
#include "src/sched/generators.h"

int main() {
  using namespace psga;
  bench::header("E18 belkadi_params", "Belkadi et al. [37], §III.D",
                "topology/replacement insignificant; more subpopulations "
                "degrade quality; migration interval is decisive");

  sched::HfsParams params;
  params.jobs = 20;
  params.machines_per_stage = {3, 2, 3};
  auto problem = std::make_shared<ga::HybridFlowShopProblem>(
      sched::random_hybrid_flow_shop(params, 3701));

  const int generations = 120 * bench::scale();
  const int replications = 4 * bench::scale();
  const int total_pop = 120;

  auto run_once = [&](int islands, ga::Topology topo,
                      ga::MigrationPolicy policy, int interval,
                      std::uint64_t seed) {
    ga::IslandGaConfig cfg;
    cfg.islands = islands;
    cfg.base.population = total_pop / islands;
    cfg.base.termination.max_generations = generations;
    cfg.base.seed = seed;
    // Fitness-proportionate selection, as in [37]: small subpopulations
    // then genuinely depend on migration for diversity.
    cfg.base.ops.selection = std::make_shared<ga::RouletteSelection>();
    cfg.base.ops.mutation_rate = 0.1;
    cfg.migration.topology = topo;
    cfg.migration.policy = policy;
    cfg.migration.interval = interval;
    const auto engine = ga::make_engine(problem, cfg);
    return engine->run().best_objective;
  };
  auto mean_over_reps = [&](auto&&... args) {
    std::vector<double> finals;
    for (int rep = 0; rep < replications; ++rep) {
      finals.push_back(run_once(args..., 4000 + 19 * rep));
    }
    return stats::mean(finals);
  };

  // (a) topology x replacement.
  {
    stats::Table table({"topology", "replacement", "mean makespan"});
    for (const auto& [tname, topo] :
         std::vector<std::pair<std::string, ga::Topology>>{
             {"ring", ga::Topology::kRing}, {"grid", ga::Topology::kGrid}}) {
      for (const auto& [pname, policy] :
           std::vector<std::pair<std::string, ga::MigrationPolicy>>{
               {"best", ga::MigrationPolicy::kBestReplaceWorst},
               {"random", ga::MigrationPolicy::kRandomReplaceRandom}}) {
        table.add_row({tname, pname,
                       stats::Table::num(
                           mean_over_reps(4, topo, policy, 5), 1)});
      }
    }
    table.print();
    std::printf("Expected ([37]): four rows close together.\n\n");
  }

  // (b) subpopulation count at fixed total population.
  {
    stats::Table table({"subpopulations", "subpop size", "mean makespan"});
    for (int islands : {2, 4, 6, 10}) {
      table.add_row({std::to_string(islands),
                     std::to_string(total_pop / islands),
                     stats::Table::num(
                         mean_over_reps(islands, ga::Topology::kRing,
                                        ga::MigrationPolicy::kBestReplaceWorst,
                                        5),
                         1)});
    }
    table.print();
    std::printf("Expected ([37]): quality degrades as subpopulations "
                "multiply (each gets too small).\n\n");
  }

  // (c) migration interval.
  {
    stats::Table table({"migration interval", "mean makespan"});
    for (int interval : {1, 3, 5, 10, 20, 0}) {
      table.add_row({interval == 0 ? "never" : std::to_string(interval),
                     stats::Table::num(
                         mean_over_reps(4, ga::Topology::kRing,
                                        ga::MigrationPolicy::kBestReplaceWorst,
                                        interval),
                         1)});
    }
    table.print();
    std::printf("Expected ([37]): quality improves as migration gets more "
                "frequent; 'never' is the worst row — the decisive "
                "parameter.\n");
  }
  return 0;
}
