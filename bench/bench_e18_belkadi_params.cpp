// E18 — Belkadi et al. [37]: island GA for the hybrid flow shop with an
// assignment+sequencing genome. Paper findings: (a) connection topology
// (ring vs 2-D grid) and replacement strategy (best vs random) do NOT
// significantly change the makespan; (b) splitting a fixed total
// population across more subpopulations degrades quality; (c) the
// migration interval is the decisive parameter — more frequent migration
// improves quality.
//
// Reproduction: the three sweeps on a generated HFS instance, replicated
// — declared as exp::SweepSpec grids and run by the sweep runner (a
// custom resolver serves the generated instance).
#include <cstdio>
#include <iostream>
#include <string>

#include "src/exp/aggregate.h"
#include "src/exp/report.h"
#include "src/exp/sweep_runner.h"
#include "src/exp/sweep_spec.h"

int main() {
  using namespace psga;
  exp::bench_header("E18 belkadi_params", "Belkadi et al. [37], §III.D",
                    "topology/replacement insignificant; more subpopulations "
                    "degrade quality; migration interval is decisive");

  const int generations = 120 * exp::bench_scale();
  const int replications = 4 * exp::bench_scale();

  exp::SweepOptions options;

  // Fitness-proportionate selection, as in [37]: small subpopulations
  // then genuinely depend on migration for diversity. The generated HFS
  // instance is a spec token — no custom resolver needed.
  const std::string base =
      "engine=island sel=roulette mut-rate=0.1 problem=hybrid-flowshop "
      "instance=gen:jobs=20,stages=3x2x3,seed=3701 ";
  // @crn=on: all configurations of a table share one seed series, so
  // the sweeps compare rows under identical randomness (as the
  // hand-rolled loops did).
  const std::string budget = "@crn=on @reps=" + std::to_string(replications) +
                             " @generations=" + std::to_string(generations) +
                             " @seed=4000 ";
  auto study = [&](const std::string& name, const std::string& grid) {
    exp::SweepSpec sweep = exp::SweepSpec::parse(base + grid + " " + budget);
    sweep.name = name;
    exp::print_summary(exp::run_sweep(std::move(sweep), options), std::cout);
  };

  // (a) topology x replacement at 4 islands of 30.
  study("topology x replacement",
        "islands=4 pop=30 interval=5 topology={ring,grid} "
        "policy={best-worst,random-random}");
  std::printf("Expected ([37]): four rows close together.\n\n");

  // (b) subpopulation count at fixed total population 120.
  study("subpopulations",
        "topology=ring policy=best-worst interval=5 "
        "{islands=2 pop=60,islands=4 pop=30,islands=6 pop=20,"
        "islands=10 pop=12}");
  std::printf("Expected ([37]): quality degrades as subpopulations "
              "multiply (each gets too small).\n\n");

  // (c) migration interval (0 = never).
  study("migration interval",
        "islands=4 pop=30 topology=ring policy=best-worst "
        "interval={1,3,5,10,20,0}");
  std::printf("Expected ([37]): quality improves as migration gets more "
              "frequent; the interval=0 'never' row is the worst — the "
              "decisive parameter.\n");
  return 0;
}
