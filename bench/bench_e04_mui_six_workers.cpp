// E04 — Mui et al. [17]: job shop GA with prior-rule active schedules,
// elitist + roulette selection, run master-slave on a 6-computer server.
// Paper: 6 processors save 3-4x execution time vs the sequential version.
//
// Reproduction: the same GA (GT active decoding, elitist-roulette
// selection) serial vs 6 workers; report the time ratio.
#include "bench/bench_util.h"
#include "src/ga/solver.h"
#include "src/ga/problem_registry.h"
#include "src/ga/registry.h"
#include "src/sched/classics.h"

int main() {
  using namespace psga;
  bench::header("E04 mui_six_workers", "Mui et al. [17], §III.B",
                "master-slave GA with 6 processors saves 3-4x execution "
                "time vs the sequential version");

  auto problem = ga::make_problem(
      sched::ft20().instance, ga::JobShopProblem::Decoder::kGifflerThompson);

  ga::GaConfig cfg;
  cfg.population = 120;
  cfg.termination.max_generations = 10 * bench::scale();
  cfg.seed = 17;
  cfg.ops.selection = ga::make_selection("elitist-roulette");  // [17]'s mix
  cfg.ops.crossover = ga::make_crossover("jox");
  cfg.ops.mutation = ga::make_mutation("shift");  // neighborhood search

  double serial_s;
  {
    const auto serial = ga::make_engine(problem, cfg);
    serial_s = bench::time_seconds([&] { serial->run(); });
  }
  stats::Table table({"configuration", "seconds", "time saving"});
  table.add_row({"sequential", stats::Table::num(serial_s, 3), "1.00x"});
  par::ThreadPool pool(6);
  const auto parallel = ga::make_master_slave_engine(problem, cfg, &pool);
  const double parallel_s = bench::time_seconds([&] { parallel->run(); });
  table.add_row({"master-slave, 6 workers", stats::Table::num(parallel_s, 3),
                 stats::Table::num(serial_s / parallel_s, 2) + "x"});
  table.print();
  std::printf("\nPaper: 3-4x with 6 processors (communication overhead "
              "keeps it below the ideal 6x).\n");
  return 0;
}
