// Shared helpers for the experiment benches (bench_eXX_*). Each bench
// prints a header, the survey's reported finding ("paper" column) and the
// measured reproduction, then exits. PSGA_BENCH_SCALE=small|medium|large
// scales the budgets.
//
// The implementations moved to src/exp/report.h (the sweep subsystem's
// report layer); this header forwards for the benches that predate it.
#pragma once

#include "src/exp/report.h"
#include "src/stats/descriptive.h"
#include "src/stats/table.h"

namespace psga::bench {

using exp::time_seconds;

inline void header(const char* id, const char* source, const char* claim) {
  exp::bench_header(id, source, claim);
}

inline int scale() { return exp::bench_scale(); }

}  // namespace psga::bench
