// Shared helpers for the experiment benches (bench_eXX_*). Each bench
// prints a header, the survey's reported finding ("paper" column) and the
// measured reproduction, then exits. PSGA_BENCH_SCALE=small|medium|large
// scales the budgets.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>

#include "src/par/env.h"
#include "src/stats/descriptive.h"
#include "src/stats/table.h"

namespace psga::bench {

inline void header(const char* id, const char* source, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id, source);
  std::printf("Paper-reported finding: %s\n", claim);
  std::printf("Scale: %s (PSGA_BENCH_SCALE)\n",
              par::env_string("PSGA_BENCH_SCALE", "small").c_str());
  std::printf("==============================================================\n");
}

/// Wall-clock seconds of a callable.
template <typename Fn>
double time_seconds(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

inline int scale() { return par::bench_scale(); }

}  // namespace psga::bench
