// Micro-benchmarks: the evaluation cache and the async pipeline. The
// headline numbers land in BENCH_micro.json via ci.sh:
//   - hit_rate / decode_reduction counters on a heavy-elitism island run
//     (the acceptance bar: >= 30% fewer decode calls with the cache on);
//   - cached vs uncached engine throughput on a decode-heavy job shop;
//   - async-pipeline vs synchronous master-slave generation throughput.
#include <benchmark/benchmark.h>

#include <memory>

#include "src/ga/problem_registry.h"
#include "src/ga/solver.h"
#include "src/sched/classics.h"

namespace {

using namespace psga::ga;

ProblemPtr job_shop() {
  // ft10 through the Giffler-Thompson decoder: a decode heavy enough
  // that memoization pays, light enough for a bench loop.
  return make_problem(
      psga::sched::ft10().instance, JobShopProblem::Decoder::kGifflerThompson);
}

// Heavy elitism + migration cloning: the duplication profile the cache
// exists for. One island run per iteration; the counters report the
// measured duplicate traffic of the final run.
void BM_IslandHeavyElitism(benchmark::State& state) {
  const bool cached = state.range(0) != 0;
  const std::string spec =
      std::string("engine=island islands=4 pop=16 elites=6 interval=2 "
                  "seed=7") +
      (cached ? " eval_cache=lru:65536" : "");
  const ProblemPtr problem = job_shop();
  RunResult last;
  for (auto _ : state) {
    Solver solver = Solver::build(SolverSpec::parse(spec), problem);
    last = solver.run(StopCondition::generations(20));
    benchmark::DoNotOptimize(last.best_objective);
  }
  state.counters["evaluations"] = static_cast<double>(last.evaluations);
  if (last.cache.has_value()) {
    const double hits = static_cast<double>(last.cache->hits);
    const double misses = static_cast<double>(last.cache->misses);
    state.counters["hit_rate"] = hits / (hits + misses);
    // Decodes drop from `evaluations` (uncached) to `misses`.
    state.counters["decode_reduction"] =
        1.0 - misses / static_cast<double>(last.evaluations);
  } else {
    state.counters["hit_rate"] = 0.0;
    state.counters["decode_reduction"] = 0.0;
  }
}
BENCHMARK(BM_IslandHeavyElitism)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"cache"})
    ->Unit(benchmark::kMillisecond);

// Same duplication profile on the single-population engine: wall-clock
// effect of memoization alone.
void BM_SimpleElitistRun(benchmark::State& state) {
  const bool cached = state.range(0) != 0;
  const std::string spec =
      std::string("engine=simple pop=48 elites=16 seed=11") +
      (cached ? " eval_cache=lru:65536" : "");
  const ProblemPtr problem = job_shop();
  for (auto _ : state) {
    Solver solver = Solver::build(SolverSpec::parse(spec), problem);
    const RunResult r = solver.run(StopCondition::generations(15));
    benchmark::DoNotOptimize(r.best_objective);
  }
}
BENCHMARK(BM_SimpleElitistRun)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"cache"})
    ->Unit(benchmark::kMillisecond);

// Master-slave throughput, synchronous pool vs async pipeline (breeding
// overlaps evaluation up to the generation fence). Traces are identical;
// only wall-clock may differ.
void BM_MasterSlavePipeline(benchmark::State& state) {
  const bool async = state.range(0) != 0;
  const std::string spec =
      std::string("engine=master-slave pop=64 seed=13 eval=") +
      (async ? "async_pool" : "pool");
  const ProblemPtr problem = job_shop();
  for (auto _ : state) {
    Solver solver = Solver::build(SolverSpec::parse(spec), problem);
    const RunResult r = solver.run(StopCondition::generations(10));
    benchmark::DoNotOptimize(r.best_objective);
  }
}
BENCHMARK(BM_MasterSlavePipeline)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"async"})
    ->Unit(benchmark::kMillisecond);

// Raw cache-layer overhead: lookup+hit on a full batch (the per-genome
// cost a hit must beat is one decode).
void BM_CacheHitBatch(benchmark::State& state) {
  const ProblemPtr problem = job_shop();
  psga::par::Rng rng(3);
  std::vector<Genome> population;
  const std::size_t pop = 256;
  for (std::size_t i = 0; i < pop; ++i) {
    population.push_back(problem->random_genome(rng));
  }
  std::vector<double> objectives(pop, 0.0);
  Evaluator evaluator(problem, EvalBackend::kSerial);
  EvalCacheConfig cache_cfg;
  cache_cfg.mode = EvalCacheMode::kUnbounded;
  evaluator.set_cache(std::make_shared<EvalCache>(cache_cfg));
  evaluator.evaluate(population, objectives);  // warm: everything misses once
  for (auto _ : state) {
    evaluator.evaluate(population, objectives);  // all hits
    benchmark::DoNotOptimize(objectives);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long long>(pop));
}
BENCHMARK(BM_CacheHitBatch);

}  // namespace

BENCHMARK_MAIN();
