// Micro-benchmarks: parallel substrate — thread-pool dispatch overhead,
// parallel_for scaling on a fitness-like kernel, Evaluator backend
// throughput on a real decoder, cluster message latency.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cmath>

#include "src/ga/evaluator.h"
#include "src/ga/problem_registry.h"
#include "src/par/cluster.h"
#include "src/par/rng.h"
#include "src/par/thread_pool.h"
#include "src/sched/classics.h"

namespace {

using namespace psga::par;

void BM_ParallelForDispatch(benchmark::State& state) {
  ThreadPool pool(static_cast<int>(state.range(0)));
  std::atomic<int> sink{0};
  for (auto _ : state) {
    pool.parallel_for(1, [&](std::size_t) { ++sink; });
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ParallelForDispatch)->Arg(1)->Arg(4)->Arg(16);

double fake_fitness(std::uint64_t seed, int work) {
  Rng rng(seed);
  double acc = 0.0;
  for (int i = 0; i < work; ++i) acc += std::sqrt(rng.uniform() + 1.0);
  return acc;
}

void BM_ParallelForFitnessKernel(benchmark::State& state) {
  ThreadPool pool(static_cast<int>(state.range(0)));
  const std::size_t population = 1024;
  std::vector<double> out(population);
  for (auto _ : state) {
    pool.parallel_for(population, [&](std::size_t i) {
      out[i] = fake_fitness(i, 300);
    });
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * population);
}
BENCHMARK(BM_ParallelForFitnessKernel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(24);

void BM_EvaluatorJobShopBatch(benchmark::State& state) {
  // Whole-population evaluation of ft10 through the unified Evaluator —
  // the actual hot loop of every engine. Arg = thread-pool width
  // (0 = serial backend).
  using namespace psga::ga;
  const auto problem = make_problem(
      psga::sched::ft10().instance, JobShopProblem::Decoder::kOperationBased);
  Rng rng(7);
  std::vector<Genome> population;
  const std::size_t pop = 256;
  population.reserve(pop);
  for (std::size_t i = 0; i < pop; ++i) {
    population.push_back(problem->random_genome(rng));
  }
  std::vector<double> objectives(pop, 0.0);
  const int threads = static_cast<int>(state.range(0));
  ThreadPool pool(threads > 0 ? threads : 1);
  Evaluator evaluator(problem,
                      threads > 0 ? EvalBackend::kThreadPool
                                  : EvalBackend::kSerial,
                      &pool);
  for (auto _ : state) {
    evaluator.evaluate(population, objectives);
    benchmark::DoNotOptimize(objectives);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long long>(pop));
}
BENCHMARK(BM_EvaluatorJobShopBatch)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_RngThroughput(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngThroughput);

void BM_RngSplit(benchmark::State& state) {
  Rng rng(1);
  std::uint64_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.split(id++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngSplit);

void BM_ClusterPingPong(benchmark::State& state) {
  for (auto _ : state) {
    Cluster cluster(2);
    cluster.run([](Rank& rank) {
      const int rounds = 50;
      for (int i = 0; i < rounds; ++i) {
        if (rank.id() == 0) {
          Message msg;
          msg.tag = 1;
          msg.ints = {i};
          rank.send(1, msg);
          (void)rank.recv(2);
        } else {
          (void)rank.recv(1);
          Message msg;
          msg.tag = 2;
          rank.send(0, msg);
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_ClusterPingPong);

}  // namespace

BENCHMARK_MAIN();
