// "Modern manufacturing" walkthrough (survey Section II's new integrated
// factors): an energy-aware flow shop and a job shop hit by machine
// breakdowns with predictive-reactive GA rescheduling, plus ASCII Gantt
// charts and instance file round-tripping.
//
//   $ ./example_dynamic_energy_shop
#include <cstdio>

#include "src/ga/problems.h"
#include "src/ga/solver.h"
#include "src/sched/classics.h"
#include "src/sched/dynamic.h"
#include "src/sched/energy.h"
#include "src/sched/gantt.h"
#include "src/sched/io.h"
#include "src/sched/taillard.h"
#include "src/stats/table.h"

int main() {
  using namespace psga;

  // --- Part 1: energy-aware flow shop --------------------------------------
  std::printf("== Energy-aware flow shop (survey §II, [8][9]) ==\n");
  const auto inst = sched::taillard_flow_shop(10, 5, 4242);
  const auto profiles = sched::random_power_profiles(5, 7);

  auto solve = [&](sched::EnergyObjectiveWeights weights) {
    // Typed escape hatch: spec strings cover the registry's generated
    // profiles (`problem=energy-flowshop instance=gen:... instance-seed=7
    // w-makespan=.. w-energy=.. w-peak=..`); here the report below needs
    // the exact same profiles, so the problem is built from them.
    auto problem =
        ga::make_problem(sched::EnergyAwareFlowShop(inst, profiles, weights));
    return ga::Solver::build(
               ga::SolverSpec::parse("engine=simple pop=60 seed=11"), problem)
        .run(ga::StopCondition::generations(80))
        .best.seq;
  };

  const auto fast = solve({1.0, 0.0, 0.0});          // pure makespan
  const auto frugal = solve({0.2, 0.05, 2.0});       // energy/peak-aware
  sched::EnergyAwareFlowShop reporter(inst, profiles, {});
  stats::Table energy_table({"objective", "Cmax", "total energy", "peak power"});
  for (const auto& [label, perm] :
       {std::pair{"makespan only", fast}, std::pair{"energy-aware", frugal}}) {
    const auto report = reporter.report(perm);
    energy_table.add_row({label,
                          std::to_string(reporter.makespan(perm)),
                          stats::Table::num(report.total_energy(), 0),
                          stats::Table::num(report.peak_power, 1)});
  }
  energy_table.print();

  std::printf("\nGantt of the energy-aware schedule:\n%s\n",
              sched::render_gantt(sched::flow_shop_schedule(inst, frugal), 5,
                                  {.width = 72})
                  .c_str());

  // --- Part 2: breakdowns + predictive-reactive rescheduling ---------------
  std::printf("== Dynamic job shop: breakdowns on ft06 (survey §II, [9]) ==\n");
  const auto& js = sched::ft06().instance;
  // The registry resolves the classic by name: instance=ft06.
  auto nominal =
      ga::ProblemSpec::parse("problem=jobshop instance=ft06").build();
  const ga::RunResult predictive =
      ga::Solver::build(ga::SolverSpec::parse("engine=simple pop=50 seed=3"),
                        nominal)
          .run(ga::StopCondition::generations(60));

  const auto windows = sched::random_downtimes(js.machines, 2, 30, 8, 15, 99);
  for (const auto& w : windows) {
    std::printf("  breakdown: machine %d unavailable [%lld, %lld)\n",
                w.machine, static_cast<long long>(w.start),
                static_cast<long long>(w.end));
  }

  const auto passive = sched::simulate_dynamic(js, predictive.best.seq, windows);
  std::vector<sched::Downtime> window_vec(windows.begin(), windows.end());
  auto replanner = [&](const sched::ReplanContext& context) {
    // Mid-simulation replan state cannot come from a spec string — the
    // typed escape hatch returns the same ProblemPtr interface.
    auto problem = ga::make_dynamic_suffix_problem(
        &js, context.frozen_prefix, context.remaining, window_vec);
    const ga::RunResult r =
        ga::Solver::build(ga::SolverSpec::parse("engine=simple pop=30"),
                          problem)
            .run(ga::StopCondition::generations(30));
    // Never react for the worse: keep the incumbent order unless beaten.
    ga::Genome incumbent;
    incumbent.seq = context.remaining;
    return problem->objective(incumbent) <= r.best_objective
               ? context.remaining
               : r.best.seq;
  };
  const auto reactive =
      sched::simulate_dynamic(js, predictive.best.seq, windows, replanner);

  std::printf("\n  predictive Cmax (no disruption): %lld\n",
              static_cast<long long>(passive.predictive_makespan));
  std::printf("  right-shift repair Cmax        : %lld\n",
              static_cast<long long>(passive.realized_makespan));
  std::printf("  predictive-reactive Cmax       : %lld (%d replans)\n",
              static_cast<long long>(reactive.realized_makespan),
              reactive.replans);
  std::printf("\nRealized (reactive) schedule:\n%s\n",
              sched::render_gantt(reactive.realized_schedule, js.machines,
                                  {.width = 72})
                  .c_str());

  // --- Part 3: file round trip ----------------------------------------------
  const std::string path = "/tmp/psga_example_ft06.jsp";
  sched::save_job_shop(js, path);
  const auto loaded = sched::load_job_shop(path);
  std::printf("Instance round-trip through %s: %d jobs, %d machines — OK\n",
              path.c_str(), loaded.jobs, loaded.machines);
  return 0;
}
