// Quickstart: solve a Taillard flow-shop benchmark with the four parallel
// GA models of the survey and compare what each finds.
//
//   $ ./example_quickstart
//
// Walks through the minimal public API: build an instance, wrap it in a
// Problem, configure an engine, run, inspect the result.
#include <cstdio>

#include "src/ga/cellular_ga.h"
#include "src/ga/island_ga.h"
#include "src/ga/master_slave_ga.h"
#include "src/ga/problems.h"
#include "src/ga/simple_ga.h"
#include "src/sched/heuristics.h"
#include "src/sched/taillard.h"
#include "src/stats/table.h"

int main() {
  using namespace psga;

  // 1. A benchmark instance, regenerated bit-exactly from Taillard's
  //    published generator seed.
  const sched::TaillardBenchmark& bench = sched::taillard_20x5().front();
  const sched::FlowShopInstance instance = sched::make_taillard(bench);
  std::printf("Instance %s: %d jobs x %d machines, best known Cmax = %lld\n\n",
              bench.name, instance.jobs, instance.machines,
              static_cast<long long>(bench.best_known));

  // 2. Wrap it in a Problem (decoder + objective).
  auto problem = std::make_shared<ga::FlowShopProblem>(instance);

  // 3. A shared budget for all engines.
  ga::GaConfig base;
  base.population = 100;
  base.termination.max_generations = 200;
  base.seed = 2024;

  stats::Table table({"engine", "best Cmax", "RPD vs best known (%)",
                      "evaluations", "seconds"});
  auto report = [&](const char* name, const ga::GaResult& r) {
    table.add_row({name, stats::Table::num(r.best_objective, 0),
                   stats::Table::num(
                       100.0 * (r.best_objective - bench.best_known) /
                           bench.best_known,
                       2),
                   std::to_string(r.evaluations),
                   stats::Table::num(r.seconds, 3)});
  };

  // NEH reference heuristic (the survey's Eq. (1) uses such a value).
  const sched::Time neh = sched::neh_makespan(instance);
  std::printf("NEH constructive heuristic: %lld\n\n",
              static_cast<long long>(neh));

  // 4a. Simple GA (survey Table II).
  ga::SimpleGa simple(problem, base);
  report("simple", simple.run());

  // 4b. Master-slave GA (Table III): same algorithm, parallel evaluation.
  ga::MasterSlaveGa master_slave(problem, base);
  report("master-slave", master_slave.run());

  // 4c. Cellular GA (Table IV): 10x10 torus.
  ga::CellularConfig cell;
  cell.width = 10;
  cell.height = 10;
  cell.termination = base.termination;
  cell.seed = base.seed;
  ga::CellularGa cellular(problem, cell);
  report("cellular", cellular.run());

  // 4d. Island GA (Table V): 4 islands on a ring.
  ga::IslandGaConfig island_cfg;
  island_cfg.islands = 4;
  island_cfg.base = base;
  island_cfg.base.population = 25;  // same total population
  island_cfg.migration.interval = 10;
  ga::IslandGa island(problem, island_cfg);
  report("island", island.run().overall);

  table.print();
  std::printf(
      "\nAll engines minimize the makespan; the island/cellular engines use\n"
      "deterministic per-island/per-cell RNG streams, so rerunning this\n"
      "program reproduces these rows exactly.\n");
  return 0;
}
