// Quickstart: solve a Taillard flow-shop benchmark through the unified
// psga::ga::Solver facade and compare the survey's parallel GA models.
//
//   $ ./example_quickstart
//
// The canonical entry point is one combined spec string: the problem
// half (problem registry) names the shop model and instance source, the
// engine half (engine registry) names the parallel GA model:
//
//   ga::RunResult r =
//       ga::Solver::build(ga::RunSpec::parse(
//           "problem=flowshop instance=ta001 engine=island islands=4"))
//           .run(ga::StopCondition::generations(200));
//   std::printf("best Cmax %.0f after %lld evaluations\n",
//               r.best_objective, r.evaluations);
//
// Below, the same facade drives all four classic models by name.
#include <cstdio>
#include <string>

#include "src/ga/solver.h"
#include "src/sched/heuristics.h"
#include "src/sched/taillard.h"
#include "src/stats/table.h"

int main() {
  using namespace psga;

  // 1. A benchmark instance, regenerated bit-exactly from Taillard's
  //    published generator seed. The spec token `instance=ta001` below
  //    resolves to this same instance through the problem registry.
  const sched::TaillardBenchmark& bench = sched::taillard_20x5().front();
  const sched::FlowShopInstance instance = sched::make_taillard(bench);
  std::printf("Instance %s: %d jobs x %d machines, best known Cmax = %lld\n\n",
              bench.name, instance.jobs, instance.machines,
              static_cast<long long>(bench.best_known));

  // 2. A shared budget for all engines.
  const ga::StopCondition stop = ga::StopCondition::generations(200);

  stats::Table table({"engine", "best Cmax", "RPD vs best known (%)",
                      "evaluations", "seconds"});
  auto report = [&](const char* name, const ga::RunResult& r) {
    table.add_row({name, stats::Table::num(r.best_objective, 0),
                   stats::Table::num(
                       100.0 * (r.best_objective - bench.best_known) /
                           bench.best_known,
                       2),
                   std::to_string(r.evaluations),
                   stats::Table::num(r.seconds, 3)});
  };

  // NEH reference heuristic (the survey's Eq. (1) uses such a value).
  const sched::Time neh = sched::neh_makespan(instance);
  std::printf("NEH constructive heuristic: %lld\n\n",
              static_cast<long long>(neh));

  // 3. One combined spec string per parallel model of the survey:
  //    Table II (simple), III (master-slave), IV (cellular), V (island).
  //    The problem half is shared; only the engine half varies.
  const char* problem_spec = "problem=flowshop instance=ta001 ";
  const char* specs[][2] = {
      {"simple", "engine=simple pop=100 seed=2024"},
      {"master-slave", "engine=master-slave pop=100 seed=2024"},
      {"cellular", "engine=cellular width=10 height=10 seed=2024"},
      {"island", "engine=island islands=4 pop=25 interval=10 seed=2024"},
  };
  for (const auto& [name, engine_spec] : specs) {
    report(name, ga::Solver::build(
                     ga::RunSpec::parse(problem_spec + std::string(engine_spec)))
                     .run(stop));
  }

  table.print();
  std::printf(
      "\nAll engines minimize the makespan; the island/cellular engines use\n"
      "deterministic per-island/per-cell RNG streams, so rerunning this\n"
      "program reproduces these rows exactly.\n");
  return 0;
}
