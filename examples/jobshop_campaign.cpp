// Job-shop optimization campaign on the classic Fisher–Thompson and
// Lawrence instances: Giffler–Thompson active decoding, dispatching-rule
// warm references, and an island GA with heterogeneous operators per
// island (the design Park et al. [26] found to improve both best and
// average solutions).
//
//   $ ./example_jobshop_campaign
#include <cstdio>

#include "src/ga/problems.h"
#include "src/ga/registry.h"
#include "src/ga/solver.h"
#include "src/sched/classics.h"
#include "src/sched/heuristics.h"
#include "src/stats/table.h"

int main() {
  using namespace psga;

  stats::Table table({"instance", "optimum", "dispatch F̄", "island GA best",
                      "gap to optimum (%)", "schedule feasible"});

  for (const sched::ClassicInstance* classic : sched::classic_instances()) {
    const sched::JobShopInstance& instance = classic->instance;

    // Reference heuristic value (survey Eq. (1) F̄): best dispatching rule.
    const sched::Time dispatch = sched::best_dispatch_makespan(instance);

    // Active-schedule decoding: chromosomes resolve Giffler–Thompson
    // conflicts, so every individual is an active schedule. The typed
    // make_problem escape hatch keeps decode() access for validation;
    // `problem=jobshop decoder=active instance=<name>` builds the same
    // problem through the registry.
    auto problem = ga::make_problem(
        instance, ga::JobShopProblem::Decoder::kGifflerThompson);

    ga::IslandGaConfig cfg;
    cfg.islands = 4;
    cfg.base.population = 40;
    cfg.base.termination.max_generations = 120;
    cfg.base.seed = 17;
    cfg.migration.interval = 10;
    cfg.migration.topology = ga::Topology::kRing;
    // Heterogeneous islands, one crossover flavor each ([26]).
    for (const char* cx : {"jox", "ppx", "thx", "two-point"}) {
      ga::OperatorConfig ops;
      ops.selection = ga::make_selection("tournament2");
      ops.crossover = ga::make_crossover(cx);
      ops.mutation = ga::make_mutation("swap");
      cfg.per_island_ops.push_back(ops);
    }

    // Heterogeneous per-island operators go beyond spec strings, so this
    // uses the typed escape hatch into the same Engine interface.
    const ga::RunResult result = ga::make_engine(problem, cfg)->run();

    // Decode and validate the winning chromosome end to end.
    const sched::Schedule schedule = problem->decode(result.best);
    const bool feasible =
        !validate(schedule, instance.validation_spec()).has_value();

    table.add_row(
        {classic->name, std::to_string(classic->optimum),
         std::to_string(dispatch),
         stats::Table::num(result.best_objective, 0),
         stats::Table::num(100.0 * (result.best_objective -
                                    static_cast<double>(classic->optimum)) /
                               static_cast<double>(classic->optimum),
                           2),
         feasible ? "yes" : "NO"});
  }

  table.print();
  return 0;
}
