// Migration parameter study — a miniature of the empirical studies the
// survey reviews ([35][37]): sweep topology, policy, interval and island
// count on one instance and print the study tables. Demonstrates driving
// the library programmatically for experimentation.
//
//   $ ./example_parameter_study [replications]
#include <cstdio>
#include <cstdlib>

#include "src/ga/island_ga.h"
#include "src/ga/problems.h"
#include "src/sched/taillard.h"
#include "src/stats/descriptive.h"
#include "src/stats/table.h"

namespace {

using namespace psga;

double run_once(const ga::ProblemPtr& problem, int islands,
                ga::Topology topology, ga::MigrationPolicy policy,
                int interval, std::uint64_t seed) {
  ga::IslandGaConfig cfg;
  cfg.islands = islands;
  cfg.base.population = 120 / islands;
  cfg.base.termination.max_generations = 80;
  cfg.base.seed = seed;
  cfg.migration.topology = topology;
  cfg.migration.policy = policy;
  cfg.migration.interval = interval;
  ga::IslandGa engine(problem, cfg);
  return engine.run().overall.best_objective;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace psga;
  const int replications = argc > 1 ? std::atoi(argv[1]) : 3;

  const auto bench = sched::taillard_20x5()[2];  // ta003
  auto problem =
      std::make_shared<ga::FlowShopProblem>(sched::make_taillard(bench));
  std::printf("Parameter study on %s (best known %lld), %d replications "
              "per cell\n\n",
              bench.name, static_cast<long long>(bench.best_known),
              replications);

  auto mean_of = [&](auto&&... args) {
    std::vector<double> finals;
    for (int rep = 0; rep < replications; ++rep) {
      finals.push_back(run_once(problem, args..., 42 + 17 * rep));
    }
    return stats::mean_rpd(finals, static_cast<double>(bench.best_known));
  };

  {
    stats::Table table({"topology", "mean RPD (%)"});
    const std::pair<const char*, ga::Topology> topologies[] = {
        {"ring", ga::Topology::kRing},
        {"grid", ga::Topology::kGrid},
        {"torus", ga::Topology::kTorus},
        {"fully connected", ga::Topology::kFullyConnected},
        {"star", ga::Topology::kStar},
        {"hypercube", ga::Topology::kHypercube},
        {"random per epoch", ga::Topology::kRandom},
    };
    for (const auto& [name, topology] : topologies) {
      table.add_row({name,
                     stats::Table::num(
                         mean_of(6, topology,
                                 ga::MigrationPolicy::kBestReplaceRandom, 8),
                         3)});
    }
    std::printf("-- Topology (6 islands, best-replace-random, interval 8)\n");
    table.print();
  }
  {
    stats::Table table({"interval", "mean RPD (%)"});
    for (int interval : {0, 1, 4, 8, 16, 32}) {
      table.add_row({interval == 0 ? "never" : std::to_string(interval),
                     stats::Table::num(
                         mean_of(6, ga::Topology::kRing,
                                 ga::MigrationPolicy::kBestReplaceWorst,
                                 interval),
                         3)});
    }
    std::printf("\n-- Migration interval (6 islands, ring)\n");
    table.print();
  }
  {
    stats::Table table({"islands", "subpop size", "mean RPD (%)"});
    for (int islands : {2, 3, 4, 6, 10}) {
      table.add_row({std::to_string(islands),
                     std::to_string(120 / islands),
                     stats::Table::num(
                         mean_of(islands, ga::Topology::kRing,
                                 ga::MigrationPolicy::kBestReplaceWorst, 8),
                         3)});
    }
    std::printf("\n-- Island count at fixed total population 120\n");
    table.print();
  }
  std::printf("\nEvery cell is deterministic given its seed; rerun with more "
              "replications for tighter means.\n");
  return 0;
}
