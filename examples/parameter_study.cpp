// Migration parameter study — a miniature of the empirical studies the
// survey reviews ([35][37]): sweep topology, policy, interval and island
// count on one instance and print the study tables.
//
// Since the psga::exp subsystem, the whole study is three declarative
// sweep sections driven by exp::SweepRunner — the same sections shipped
// as sweeps/parameter_study.sweep, so
//
//   $ ./example_parameter_study [replications]
//   $ ./psga_sweep sweeps/parameter_study.sweep
//
// print the same tables (both render through exp::print_summary).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "src/exp/aggregate.h"
#include "src/exp/sweep_runner.h"
#include "src/exp/sweep_spec.h"

// Kept verbatim in sync with sweeps/parameter_study.sweep.
static const char* kStudy = R"(
[topology]
# Topology sweep: 6 islands, best-replace-random, interval 8.
engine=island islands=6 pop=20 policy=best-random interval=8
topology={ring,grid,torus,full,star,hypercube,random}
@instances=ta003
@reps=10
@generations=80
@seed=42
@reference=1081
@crn=on

[interval]
# Migration interval sweep: 6 islands, ring, best-replace-worst
# (interval 0 = never migrate).
engine=island islands=6 pop=20 topology=ring policy=best-worst
interval={0,1,4,8,16,32}
@instances=ta003
@reps=10
@generations=80
@seed=42
@reference=1081
@crn=on

[islands]
# Island count at fixed total population 120 (zipped axis moves the
# per-island pop with the island count).
engine=island topology=ring policy=best-worst interval=8
{islands=2 pop=60,islands=3 pop=40,islands=4 pop=30,islands=6 pop=20,islands=10 pop=12}
@instances=ta003
@reps=10
@generations=80
@seed=42
@reference=1081
@crn=on
)";

int main(int argc, char** argv) {
  using namespace psga;
  std::printf("Parameter study on ta003 (best known 1081); every cell is a "
              "deterministic SolverSpec string.\n\n");
  for (exp::SweepSpec sweep : exp::SweepSpec::parse_file(kStudy)) {
    if (argc > 1) sweep.reps = std::max(1, std::atoi(argv[1]));
    exp::print_summary(exp::run_sweep(std::move(sweep)), std::cout);
    std::printf("\n");
  }
  std::printf("Rerun with more replications (argv[1]) for tighter means, or "
              "drive the same grid via psga_sweep sweeps/parameter_study.sweep "
              "for JSONL telemetry.\n");
  return 0;
}
