// Migration parameter study — a miniature of the empirical studies the
// survey reviews ([35][37]): sweep topology, policy, interval and island
// count on one instance and print the study tables. Demonstrates driving
// the library declaratively: every experiment cell is one SolverSpec
// string, so the whole grid is string composition.
//
//   $ ./example_parameter_study [replications]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/ga/problems.h"
#include "src/ga/solver.h"
#include "src/sched/taillard.h"
#include "src/stats/descriptive.h"
#include "src/stats/table.h"

namespace {

using namespace psga;

double run_once(const ga::ProblemPtr& problem, int islands,
                const std::string& topology, const std::string& policy,
                int interval, std::uint64_t seed) {
  const std::string spec =
      "engine=island islands=" + std::to_string(islands) +
      " pop=" + std::to_string(120 / islands) + " topology=" + topology +
      " policy=" + policy + " interval=" + std::to_string(interval) +
      " seed=" + std::to_string(seed);
  return ga::Solver::build(ga::SolverSpec::parse(spec), problem)
      .run(ga::StopCondition::generations(80))
      .best_objective;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace psga;
  const int replications = argc > 1 ? std::atoi(argv[1]) : 3;

  const auto bench = sched::taillard_20x5()[2];  // ta003
  auto problem =
      std::make_shared<ga::FlowShopProblem>(sched::make_taillard(bench));
  std::printf("Parameter study on %s (best known %lld), %d replications "
              "per cell\n\n",
              bench.name, static_cast<long long>(bench.best_known),
              replications);

  auto mean_of = [&](auto&&... args) {
    std::vector<double> finals;
    for (int rep = 0; rep < replications; ++rep) {
      finals.push_back(run_once(problem, args..., 42 + 17 * rep));
    }
    return stats::mean_rpd(finals, static_cast<double>(bench.best_known));
  };

  {
    stats::Table table({"topology", "mean RPD (%)"});
    for (const char* topology :
         {"ring", "grid", "torus", "full", "star", "hypercube", "random"}) {
      table.add_row({topology,
                     stats::Table::num(
                         mean_of(6, topology, "best-random", 8), 3)});
    }
    std::printf("-- Topology (6 islands, best-replace-random, interval 8)\n");
    table.print();
  }
  {
    stats::Table table({"interval", "mean RPD (%)"});
    for (int interval : {0, 1, 4, 8, 16, 32}) {
      table.add_row({interval == 0 ? "never" : std::to_string(interval),
                     stats::Table::num(
                         mean_of(6, "ring", "best-worst", interval), 3)});
    }
    std::printf("\n-- Migration interval (6 islands, ring)\n");
    table.print();
  }
  {
    stats::Table table({"islands", "subpop size", "mean RPD (%)"});
    for (int islands : {2, 3, 4, 6, 10}) {
      table.add_row({std::to_string(islands),
                     std::to_string(120 / islands),
                     stats::Table::num(
                         mean_of(islands, "ring", "best-worst", 8), 3)});
    }
    std::printf("\n-- Island count at fixed total population 120\n");
    table.print();
  }
  std::printf("\nEvery cell is deterministic given its seed; rerun with more "
              "replications for tighter means.\n");
  return 0;
}
