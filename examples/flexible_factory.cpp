// A "modern manufacturing" scenario from Section II of the survey: a
// flexible job shop with sequence-dependent setup times, machine release
// dates and time lags (the model of Defersha & Chen [36]), solved with an
// island GA, plus a lot-streaming flexible flow shop ([35]) where the GA
// co-optimizes sublot sizes (continuous keys) and sublot sequencing.
// Both runs go through the Solver facade: one spec string per scenario.
//
//   $ ./example_flexible_factory
#include <cstdio>

#include "src/ga/solver.h"
#include "src/stats/table.h"

int main() {
  using namespace psga;
  const ga::StopCondition stop = ga::StopCondition::generations(100);

  // --- Part 1: flexible job shop with setups --------------------------------
  std::printf("== Flexible job shop with sequence-dependent setups ==\n");
  // The whole scenario is one gen: token — the registry drives
  // sched::random_flexible_job_shop with these parameters, so the same
  // string reproduces this instance in a sweep file.
  auto fjs_problem =
      ga::ProblemSpec::parse(
          "problem=flexible-jobshop "
          "instance=gen:jobs=12,machines=6,ops=5,eligible=3,setup=12,"
          "release=30,lag=5,seed=2024")
          .build();

  // [36]'s fresh random migration routes per epoch: topology=random.
  const ga::SolverSpec island_spec = ga::SolverSpec::parse(
      "engine=island islands=4 pop=40 seed=5 topology=random interval=8");
  const auto fjs_result =
      ga::Solver::build(island_spec, fjs_problem).run(stop);
  std::printf("  makespan (island GA): %.0f\n", fjs_result.best_objective);
  std::printf("  initial random best : %.0f\n", fjs_result.history.front());
  std::printf("  improvement         : %.1f%%\n\n",
              100.0 * (fjs_result.history.front() -
                       fjs_result.best_objective) /
                  fjs_result.history.front());

  // --- Part 2: lot streaming ------------------------------------------------
  std::printf("== Lot-streaming flexible flow shop ==\n");
  auto lot_problem =
      ga::ProblemSpec::parse(
          "problem=lot-streaming "
          "instance=gen:jobs=8,stages=2x3x2,sublots=3,seed=7")
          .build();

  // [35] found the fully connected topology best for lot streaming.
  const ga::SolverSpec lot_spec = ga::SolverSpec::parse(
      "engine=island islands=4 pop=40 seed=5 topology=full interval=8");
  const auto lot_result = ga::Solver::build(lot_spec, lot_problem).run(stop);

  // Compare against the no-streaming variant (one sublot per job).
  auto whole_problem =
      ga::ProblemSpec::parse(
          "problem=lot-streaming "
          "instance=gen:jobs=8,stages=2x3x2,sublots=1,seed=7")
          .build();
  const auto whole_result =
      ga::Solver::build(lot_spec, whole_problem).run(stop);

  stats::Table table({"variant", "sublots/job", "best makespan"});
  table.add_row({"lot streaming", "3",
                 stats::Table::num(lot_result.best_objective, 0)});
  table.add_row({"whole batches", "1",
                 stats::Table::num(whole_result.best_objective, 0)});
  table.print();
  std::printf(
      "\nSplitting batches into sublots lets downstream stages start early —\n"
      "the makespan reduction Defersha & Chen report for lot streaming.\n");
  return 0;
}
