// A "modern manufacturing" scenario from Section II of the survey: a
// flexible job shop with sequence-dependent setup times, machine release
// dates and time lags (the model of Defersha & Chen [36]), solved with an
// island GA, plus a lot-streaming flexible flow shop ([35]) where the GA
// co-optimizes sublot sizes (continuous keys) and sublot sequencing.
// Both runs go through the Solver facade: one spec string per scenario.
//
//   $ ./example_flexible_factory
#include <cstdio>

#include "src/ga/problems.h"
#include "src/ga/solver.h"
#include "src/sched/generators.h"
#include "src/stats/table.h"

int main() {
  using namespace psga;
  const ga::StopCondition stop = ga::StopCondition::generations(100);

  // --- Part 1: flexible job shop with setups --------------------------------
  std::printf("== Flexible job shop with sequence-dependent setups ==\n");
  sched::FjsParams fjs_params;
  fjs_params.jobs = 12;
  fjs_params.machines = 6;
  fjs_params.ops_per_job = 5;
  fjs_params.eligible_machines = 3;
  fjs_params.setup_hi = 12;
  fjs_params.detached_setup = true;
  fjs_params.machine_release_hi = 30;
  fjs_params.max_lag = 5;
  const auto fjs = sched::random_flexible_job_shop(fjs_params, 2024);
  auto fjs_problem = std::make_shared<ga::FlexibleJobShopProblem>(fjs);

  // [36]'s fresh random migration routes per epoch: topology=random.
  const ga::SolverSpec island_spec = ga::SolverSpec::parse(
      "engine=island islands=4 pop=40 seed=5 topology=random interval=8");
  const auto fjs_result =
      ga::Solver::build(island_spec, fjs_problem).run(stop);
  std::printf("  makespan (island GA): %.0f\n", fjs_result.best_objective);
  std::printf("  initial random best : %.0f\n", fjs_result.history.front());
  std::printf("  improvement         : %.1f%%\n\n",
              100.0 * (fjs_result.history.front() -
                       fjs_result.best_objective) /
                  fjs_result.history.front());

  // --- Part 2: lot streaming ------------------------------------------------
  std::printf("== Lot-streaming flexible flow shop ==\n");
  sched::LotStreamParams lot_params;
  lot_params.jobs = 8;
  lot_params.machines_per_stage = {2, 3, 2};
  lot_params.sublots = 3;
  const auto lot = sched::random_lot_streaming(lot_params, 7);
  auto lot_problem = std::make_shared<ga::LotStreamingProblem>(lot);

  // [35] found the fully connected topology best for lot streaming.
  const ga::SolverSpec lot_spec = ga::SolverSpec::parse(
      "engine=island islands=4 pop=40 seed=5 topology=full interval=8");
  const auto lot_result = ga::Solver::build(lot_spec, lot_problem).run(stop);

  // Compare against the no-streaming variant (one sublot per job).
  sched::LotStreamParams whole_params = lot_params;
  whole_params.sublots = 1;
  const auto whole = sched::random_lot_streaming(whole_params, 7);
  auto whole_problem = std::make_shared<ga::LotStreamingProblem>(whole);
  const auto whole_result =
      ga::Solver::build(lot_spec, whole_problem).run(stop);

  stats::Table table({"variant", "sublots/job", "best makespan"});
  table.add_row({"lot streaming", "3",
                 stats::Table::num(lot_result.best_objective, 0)});
  table.add_row({"whole batches", "1",
                 stats::Table::num(whole_result.best_objective, 0)});
  table.print();
  std::printf(
      "\nSplitting batches into sublots lets downstream stages start early —\n"
      "the makespan reduction Defersha & Chen report for lot streaming.\n");
  return 0;
}
