// Open-shop scheduling on the message-passing cluster layer: the
// deployment style of Harmanani et al. [33] (island GA over MPI on a
// 5-node Beowulf cluster), using the dual-frequency migration scheme
// (neighbors every GN generations, global broadcast every LN >> GN) and
// Kokosiński's LPT-Task / LPT-Machine chromosome decoders [32].
//
//   $ ./example_openshop_cluster
#include <cstdio>
#include <string>

#include "src/ga/solver.h"
#include "src/sched/generators.h"
#include "src/sched/open_shop.h"
#include "src/stats/table.h"

int main() {
  using namespace psga;

  const auto instance = sched::random_open_shop(15, 8, 99);
  const sched::Time lower_bound = sched::open_shop_lower_bound(instance);
  const sched::Time greedy =
      sched::open_shop_lpt_schedule(instance).makespan();
  std::printf("Open shop 15x8: trivial lower bound %lld, greedy LPT %lld\n\n",
              static_cast<long long>(lower_bound),
              static_cast<long long>(greedy));

  stats::Table table({"decoder", "ranks", "best Cmax", "gap to LB (%)"});
  for (const char* decoder : {"lpt-task", "lpt-machine"}) {
    // The same 15x8 instance as above: the registry drives
    // sched::random_open_shop from the gen: seed.
    auto problem = ga::ProblemSpec::parse(
                       std::string("problem=openshop decoder=") + decoder +
                       " instance=gen:jobs=15,machines=8,seed=99")
                       .build();

    // ranks=5 is the Beowulf cluster size of [33]; interval/broadcast are
    // the GN/LN dual-frequency periods with GN << LN.
    const auto result =
        ga::Solver::build(
            ga::SolverSpec::parse(
                "engine=cluster ranks=5 pop=40 seed=31 interval=5 broadcast=30"),
            problem)
            .run(ga::StopCondition::generations(120));
    table.add_row(
        {decoder, "5", stats::Table::num(result.best_objective, 0),
         stats::Table::num(100.0 * (result.best_objective -
                                    static_cast<double>(lower_bound)) /
                               static_cast<double>(lower_bound),
                           2)});
  }
  table.print();
  std::printf(
      "\nEach rank is an isolated island communicating only through the\n"
      "message-passing layer — the same code shape as an MPI deployment.\n");
  return 0;
}
