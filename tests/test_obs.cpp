// The observability lockdown: lock-free counter/gauge/histogram merge
// semantics under concurrent writers (the ci.sh ASan/UBSan leg races
// scrapes against the write path), percentile math against src/stats,
// the headline determinism invariant — RunResults bit-identical with
// metrics/tracing on vs off for every engine × eval backend — plus the
// Chrome trace export, the Json bridges, the sweep-runner metrics and
// trace plumbing, and the daemon-side JobTable/stats surfaces.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/exp/json.h"
#include "src/exp/obs_json.h"
#include "src/exp/sweep_runner.h"
#include "src/exp/sweep_spec.h"
#include "src/exp/telemetry.h"
#include "src/ga/problems.h"
#include "src/ga/solver.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/par/rng.h"
#include "src/sched/taillard.h"
#include "src/stats/descriptive.h"
#include "src/svc/client.h"
#include "src/svc/job_table.h"
#include "src/svc/server.h"

namespace psga {
namespace {

using exp::Json;

// --- counters and histograms under concurrent writers -----------------------

TEST(ObsCounter, ConcurrentAddsMergeToExactTotal) {
  obs::Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kAddsPerThread = 100'000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kAddsPerThread; ++i) {
        counter.add(1 + (i & 1));  // alternate 1 and 2
      }
    });
  }
  for (std::thread& w : writers) w.join();
  // Each thread adds 1+2 per pair of iterations: 3/2 per add on average.
  EXPECT_EQ(counter.value(), kThreads * kAddsPerThread * 3 / 2);
}

TEST(ObsHistogram, ConcurrentRecordsMergeToExactTotals) {
  obs::Histogram histogram;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&histogram, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        histogram.record(i % 97 + static_cast<std::uint64_t>(t));
      }
    });
  }
  for (std::thread& w : writers) w.join();
  const obs::HistogramSnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  std::uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      expected_sum += i % 97 + static_cast<std::uint64_t>(t);
    }
  }
  EXPECT_EQ(snap.sum, expected_sum);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST(ObsRegistry, ScrapeDuringWriteIsSafeAndExactAfterJoin) {
  // The sanitizer leg's target: snapshot() races the relaxed write path.
  // Mid-race scrapes only need to be safe and monotonic-ish; the final
  // scrape (writers joined) must be exact.
  obs::Registry registry;
  obs::Counter& counter = registry.counter("race.counter");
  obs::Histogram& histogram = registry.histogram("race.histogram");
  registry.gauge("race.gauge").set(7);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 200'000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&counter, &histogram] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter.add();
        histogram.record(i & 1023);
      }
    });
  }
  std::uint64_t last = 0;
  for (int scrape = 0; scrape < 200; ++scrape) {
    const obs::MetricsSnapshot snap = registry.snapshot();
    const std::uint64_t* value = snap.counter("race.counter");
    ASSERT_NE(value, nullptr);
    EXPECT_LE(*value, kThreads * kPerThread);
    last = *value;
  }
  for (std::thread& w : writers) w.join();
  (void)last;
  const obs::MetricsSnapshot final_snap = registry.snapshot();
  EXPECT_EQ(*final_snap.counter("race.counter"), kThreads * kPerThread);
  EXPECT_EQ(final_snap.histogram("race.histogram")->count,
            kThreads * kPerThread);
  EXPECT_EQ(*final_snap.gauge("race.gauge"), 7);
}

// --- histogram bucket and percentile math -----------------------------------

TEST(ObsHistogram, Log2BucketPlacement) {
  obs::Histogram histogram;
  histogram.record(0);    // bucket 0 (bit_width(0) == 0)
  histogram.record(1);    // bucket 1: [1, 2)
  histogram.record(2);    // bucket 2: [2, 4)
  histogram.record(3);    // bucket 2
  histogram.record(4);    // bucket 3: [4, 8)
  histogram.record(255);  // bucket 8: [128, 256)
  histogram.record(256);  // bucket 9: [256, 512)
  const obs::HistogramSnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 2u);
  EXPECT_EQ(snap.buckets[3], 1u);
  EXPECT_EQ(snap.buckets[8], 1u);
  EXPECT_EQ(snap.buckets[9], 1u);
  EXPECT_EQ(snap.count, 7u);
  EXPECT_EQ(snap.sum, 0u + 1 + 2 + 3 + 4 + 255 + 256);
}

TEST(ObsHistogram, PercentileTracksStatsMedianWithinBucketResolution) {
  // Validate the interpolated p50 against the exact median from
  // src/stats: the histogram can only be off by its log2 bucket width,
  // so the estimate must land within a factor of 2 of the truth.
  par::Rng rng(2024);
  obs::Histogram histogram;
  std::vector<double> values;
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t v = 1 + (rng() % 100'000);
    histogram.record(v);
    values.push_back(static_cast<double>(v));
  }
  const obs::HistogramSnapshot snap = histogram.snapshot();
  const double exact = stats::median(values);
  const double estimated = snap.percentile(50.0);
  EXPECT_GE(estimated, exact / 2.0);
  EXPECT_LE(estimated, exact * 2.0);
  // Percentiles are monotone in p and bracketed by the recorded range.
  double previous = 0.0;
  for (const double p : {0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0}) {
    const double value = snap.percentile(p);
    EXPECT_GE(value, previous) << "p" << p;
    previous = value;
  }
  EXPECT_LE(snap.percentile(100.0), 131072.0);  // 2^17 > 100000
  // Mean agrees with the exact mean (sum is tracked exactly).
  EXPECT_NEAR(snap.mean(), stats::mean(values), 1e-9);
}

TEST(ObsHistogram, SnapshotSubtractionYieldsPerRunDeltas) {
  obs::Histogram histogram;
  histogram.record(10);
  histogram.record(20);
  obs::HistogramSnapshot baseline = histogram.snapshot();
  histogram.record(40);
  obs::HistogramSnapshot lifetime = histogram.snapshot();
  lifetime -= baseline;
  EXPECT_EQ(lifetime.count, 1u);
  EXPECT_EQ(lifetime.sum, 40u);
}

// --- gauges and the kill switch ---------------------------------------------

TEST(ObsGauge, SetAndAdd) {
  obs::Gauge gauge;
  gauge.set(5);
  gauge.add(-2);
  EXPECT_EQ(gauge.value(), 3);
  gauge.set(0);
  EXPECT_EQ(gauge.value(), 0);
}

TEST(ObsKillSwitch, DisabledWritePathsAreNoOps) {
  obs::Counter counter;
  obs::Gauge gauge;
  obs::Histogram histogram;
  obs::set_enabled(false);
  counter.add(5);
  gauge.set(9);
  histogram.record(42);
  obs::set_enabled(true);
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_EQ(histogram.snapshot().count, 0u);
  counter.add(5);
  EXPECT_EQ(counter.value(), 5u);
}

// --- MetricsSnapshot lookups and subtraction --------------------------------

TEST(ObsSnapshot, LookupsAndSubtract) {
  obs::Registry registry;
  registry.counter("a.count").add(10);
  registry.gauge("b.level").set(-3);
  registry.histogram("c.ns").record(100);
  const obs::MetricsSnapshot baseline = registry.snapshot();
  registry.counter("a.count").add(7);
  registry.histogram("c.ns").record(200);
  obs::MetricsSnapshot delta = registry.snapshot();
  delta.subtract(baseline);
  ASSERT_NE(delta.counter("a.count"), nullptr);
  EXPECT_EQ(*delta.counter("a.count"), 7u);
  ASSERT_NE(delta.gauge("b.level"), nullptr);
  EXPECT_EQ(*delta.gauge("b.level"), -3);  // gauges are levels, not deltas
  ASSERT_NE(delta.histogram("c.ns"), nullptr);
  EXPECT_EQ(delta.histogram("c.ns")->count, 1u);
  EXPECT_EQ(delta.histogram("c.ns")->sum, 200u);
  EXPECT_EQ(delta.counter("missing"), nullptr);
  EXPECT_EQ(delta.gauge("missing"), nullptr);
  EXPECT_EQ(delta.histogram("missing"), nullptr);
  delta.set_counter("zz.injected", 4);
  delta.set_counter("a.count", 9);
  EXPECT_EQ(*delta.counter("zz.injected"), 4u);
  EXPECT_EQ(*delta.counter("a.count"), 9u);
}

// --- the determinism invariant ----------------------------------------------

ga::RunResult run_observed(const std::string& text, bool obs_on,
                           bool trace_on) {
  auto problem = std::make_shared<ga::FlowShopProblem>(
      sched::taillard_flow_shop(8, 3, 4321));
  obs::set_enabled(obs_on);
  const std::string spec_text = text + (trace_on ? " trace=on" : "");
  ga::Solver solver =
      ga::Solver::build(ga::SolverSpec::parse(spec_text), std::move(problem));
  const ga::RunResult result = solver.run(ga::StopCondition::generations(4));
  obs::set_enabled(true);
  return result;
}

TEST(ObsDeterminism, RunResultsBitIdenticalObsOnVsOff) {
  // The contract the whole subsystem hangs on: observation never alters
  // an evolutionary trace. Every engine × serial/async backend, same
  // seed, metrics+tracing fully on vs metrics disabled and no tracer —
  // the runs must be bit-identical.
  const std::vector<std::string> engines = {
      "engine=simple pop=12 seed=41",
      "engine=master-slave pop=12 seed=43",
      "engine=cellular width=4 height=3 seed=45",
      "engine=island islands=2 pop=8 seed=47 interval=2",
      "engine=islands-of-cellular islands=2 width=3 height=3 seed=49",
      "engine=quantum islands=2 pop=8 seed=51",
      "engine=memetic pop=12 seed=53 interval=2 budget=20",
      "engine=cluster ranks=2 pop=8 seed=55 interval=2 broadcast=4"};
  for (const std::string& engine : engines) {
    for (const std::string& eval : {" eval=serial", " eval=async_pool"}) {
      const std::string text = engine + eval;
      SCOPED_TRACE(text);
      const ga::RunResult on = run_observed(text, true, true);
      const ga::RunResult off = run_observed(text, false, false);
      EXPECT_EQ(on.best_objective, off.best_objective);
      EXPECT_EQ(on.best.seq, off.best.seq);
      EXPECT_EQ(on.history, off.history);
      EXPECT_EQ(on.evaluations, off.evaluations);
      EXPECT_EQ(on.generations, off.generations);
      // The observed run carries a non-empty per-run snapshot.
      ASSERT_TRUE(on.metrics.has_value());
      const std::uint64_t* decoded = on.metrics->counter("eval.decoded_genomes");
      ASSERT_NE(decoded, nullptr);
      EXPECT_GT(*decoded, 0u);
    }
  }
}

TEST(ObsDeterminism, TracedRunRecordsSpans) {
  auto problem = std::make_shared<ga::FlowShopProblem>(
      sched::taillard_flow_shop(8, 3, 4321));
  ga::Solver solver = ga::Solver::build(
      ga::SolverSpec::parse("engine=island islands=2 pop=8 seed=3 trace=on"),
      problem);
  const auto tracer = solver.engine().tracer_shared();
  ASSERT_NE(tracer, nullptr);
  solver.run(ga::StopCondition::generations(4));
  const std::vector<obs::SpanEvent> events = tracer->events();
  ASSERT_FALSE(events.empty());
  for (const obs::SpanEvent& event : events) {
    ASSERT_NE(event.name, nullptr);
  }
  // Untraced builds carry no tracer at all.
  ga::Solver untraced = ga::Solver::build(
      ga::SolverSpec::parse("engine=island islands=2 pop=8 seed=3"), problem);
  EXPECT_EQ(untraced.engine().tracer_shared(), nullptr);
}

TEST(ObsCache, ZeroCountersAlwaysEngagedWithoutACache) {
  const ga::RunResult result =
      run_observed("engine=simple pop=10 seed=9", true, false);
  ASSERT_TRUE(result.cache.has_value());
  EXPECT_EQ(result.cache->hits, 0);
  EXPECT_EQ(result.cache->misses, 0);
  EXPECT_EQ(result.cache->inserts, 0);
  EXPECT_EQ(result.cache->evictions, 0);
  // With a cache the counters fold into the metrics snapshot too.
  const ga::RunResult cached = run_observed(
      "engine=simple pop=10 seed=9 eval_cache=unbounded", true, false);
  ASSERT_TRUE(cached.cache.has_value());
  EXPECT_GT(cached.cache->misses, 0);
  ASSERT_TRUE(cached.metrics.has_value());
  const std::uint64_t* hits = cached.metrics->counter("eval.cache.hits");
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(*hits, static_cast<std::uint64_t>(cached.cache->hits));
}

// --- tracer buffer and Chrome export ----------------------------------------

TEST(ObsTracer, BoundedBufferDropsInsteadOfWrapping) {
  obs::Tracer tracer(4);
  for (int i = 0; i < 10; ++i) {
    obs::Span span(&tracer, "tiny");
  }
  EXPECT_EQ(tracer.events().size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
}

TEST(ObsTracer, NullTracerSpansAreHarmless) {
  obs::Span span(nullptr, "ignored");  // must not crash or record
  SUCCEED();
}

TEST(ObsTracer, ChromeTraceExportIsValidJson) {
  obs::Tracer tracer;
  {
    obs::Span outer(&tracer, "breed");
    obs::Span inner(&tracer, "decode");
  }
  obs::TraceProcess process;
  process.pid = 3;
  process.name = "cell 3: engine=simple";
  process.events = tracer.events();
  ASSERT_EQ(process.events.size(), 2u);

  std::ostringstream out;
  obs::write_chrome_trace(out, {process});
  const Json trace = Json::parse(out.str());
  const Json* events = trace.find("traceEvents");
  ASSERT_NE(events, nullptr);
  // One process_name metadata record plus one X event per span.
  ASSERT_EQ(events->items().size(), 3u);
  const Json& meta = events->items().front();
  EXPECT_EQ(meta.string_or("ph", ""), "M");
  EXPECT_EQ(meta.string_or("name", ""), "process_name");
  EXPECT_EQ(meta.number_or("pid", -1), 3);
  std::set<std::string> names;
  for (std::size_t i = 1; i < events->items().size(); ++i) {
    const Json& event = events->items()[i];
    EXPECT_EQ(event.string_or("ph", ""), "X");
    EXPECT_EQ(event.number_or("pid", -1), 3);
    EXPECT_GE(event.number_or("dur", -1.0), 0.0);
    EXPECT_GE(event.number_or("ts", -1.0), 0.0);
    names.insert(event.string_or("name", ""));
  }
  EXPECT_EQ(names, (std::set<std::string>{"breed", "decode"}));
}

// --- Json bridges ------------------------------------------------------------

TEST(ObsJson, PrettyDumpRoundTripsToTheCompactForm) {
  Json value = Json::object();
  value.set("name", Json::string("x\"y"))
      .set("list", Json::array().push(Json::number(1.5)).push(Json::null()))
      .set("nested", Json::object().set("deep", Json::boolean(true)))
      .set("empty_list", Json::array())
      .set("empty_obj", Json::object());
  const std::string pretty = value.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_NE(pretty.find("  \"name\""), std::string::npos);
  EXPECT_EQ(Json::parse(pretty).dump(), value.dump());
  // indent <= 0 degenerates to the compact form.
  EXPECT_EQ(value.dump(0), value.dump());
}

TEST(ObsJson, MetricsSnapshotRoundTripsThroughJson) {
  obs::Registry registry;
  registry.counter("eval.decoded_genomes").add(1234);
  registry.counter("eval.cache.hits").add(0);  // zero values survive
  registry.gauge("svc.queue.depth").set(-2);
  obs::Histogram& histogram = registry.histogram("eval.decode_ns");
  histogram.record(0);
  histogram.record(100);
  histogram.record(100'000);
  const obs::MetricsSnapshot snapshot = registry.snapshot();
  const obs::MetricsSnapshot back =
      exp::metrics_from_json(exp::metrics_to_json(snapshot));
  EXPECT_EQ(back.counters, snapshot.counters);
  EXPECT_EQ(back.gauges, snapshot.gauges);
  ASSERT_EQ(back.histograms.size(), snapshot.histograms.size());
  const obs::HistogramSnapshot& original = snapshot.histograms[0].second;
  const obs::HistogramSnapshot& restored = back.histograms[0].second;
  EXPECT_EQ(back.histograms[0].first, snapshot.histograms[0].first);
  EXPECT_EQ(restored.count, original.count);
  EXPECT_EQ(restored.sum, original.sum);
  EXPECT_EQ(restored.buckets, original.buckets);
}

// --- sweep-runner plumbing ---------------------------------------------------

exp::SweepSpec tiny_sweep() {
  return exp::SweepSpec::parse(
      "engine=simple pop=8 eval_cache=unbounded\n"
      "@instances=ta001 @reps=2 @generations=3 @seed=11\n");
}

TEST(ObsSweep, TelemetryCarriesMetricsRecordsAndZeroCacheCounters) {
  std::ostringstream telemetry;
  exp::TelemetrySink sink(telemetry);
  exp::SweepOptions options;
  options.telemetry = &sink;
  options.telemetry_every = 0;
  const exp::SweepResult result =
      exp::SweepRunner(tiny_sweep(), options).run();
  ASSERT_EQ(result.failed, 0);

  int cell_records = 0;
  int metrics_records = 0;
  std::istringstream lines(telemetry.str());
  std::string line;
  while (std::getline(lines, line)) {
    const Json record = Json::parse(line);
    const std::string event = record.string_or("event", "");
    if (event == "cell") {
      ++cell_records;
      // The cache object is always present, zeros when no cache ran.
      ASSERT_NE(record.find("cache"), nullptr);
      EXPECT_GE(record.find("cache")->number_or("misses", -1), 0);
    } else if (event == "metrics") {
      ++metrics_records;
      EXPECT_GE(record.number_or("cell", -1), 0);
      EXPECT_FALSE(record.string_or("hash", "").empty());
      const Json* metrics = record.find("metrics");
      ASSERT_NE(metrics, nullptr);
      const Json* counters = metrics->find("counters");
      ASSERT_NE(counters, nullptr);
      ASSERT_NE(counters->find("eval.decoded_genomes"), nullptr);
      EXPECT_GT(counters->find("eval.decoded_genomes")->as_u64(), 0u);
    }
  }
  EXPECT_EQ(cell_records, 2);
  EXPECT_EQ(metrics_records, 2);  // one per ok cell
}

TEST(ObsSweep, TraceOverlayCollectsSpansWithoutChangingResults) {
  exp::SweepOptions plain;
  const exp::SweepResult baseline =
      exp::SweepRunner(tiny_sweep(), plain).run();
  exp::SweepOptions traced;
  traced.trace = true;
  const exp::SweepResult observed =
      exp::SweepRunner(tiny_sweep(), traced).run();
  ASSERT_EQ(baseline.cells.size(), observed.cells.size());
  for (std::size_t i = 0; i < baseline.cells.size(); ++i) {
    EXPECT_EQ(baseline.cells[i].result.best_objective,
              observed.cells[i].result.best_objective);
    EXPECT_EQ(baseline.cells[i].result.evaluations,
              observed.cells[i].result.evaluations);
    EXPECT_EQ(baseline.cells[i].result.history,
              observed.cells[i].result.history);
  }
  EXPECT_TRUE(baseline.trace.empty());
  ASSERT_EQ(observed.trace.size(), observed.cells.size());
  for (std::size_t i = 0; i < observed.trace.size(); ++i) {
    EXPECT_EQ(observed.trace[i].pid, static_cast<int>(i));  // sorted
    EXPECT_FALSE(observed.trace[i].events.empty());
    EXPECT_NE(observed.trace[i].name.find("cell"), std::string::npos);
  }
}

// --- daemon-side surfaces ----------------------------------------------------

TEST(ObsJobTable, CountsAdmissionQueueDepthAndLatencies) {
  obs::Registry registry;
  svc::JobTable table(2);
  table.set_metrics(&registry);
  const auto counter = [&registry](const char* name) {
    const obs::MetricsSnapshot snap = registry.snapshot();
    const std::uint64_t* value = snap.counter(name);
    return value == nullptr ? std::uint64_t{0} : *value;
  };
  const auto depth = [&registry] {
    return *registry.snapshot().gauge("svc.queue.depth");
  };

  const ga::StopCondition stop = ga::StopCondition::generations(1);
  const svc::JobPtr first = table.submit("engine=simple", 0, stop);
  const svc::JobPtr second = table.submit("engine=simple", 0, stop);
  EXPECT_EQ(counter("svc.jobs.admitted"), 2u);
  EXPECT_EQ(depth(), 2);
  EXPECT_THROW(table.submit("engine=simple", 0, stop), svc::AdmissionError);
  EXPECT_EQ(counter("svc.jobs.rejected"), 1u);

  const svc::JobPtr running = table.next_job();
  ASSERT_EQ(running, first);
  EXPECT_EQ(depth(), 1);
  table.finish(running, svc::JobState::kDone, ga::RunResult{}, "", 0.01);
  EXPECT_EQ(counter("svc.jobs.completed"), 1u);
  const obs::MetricsSnapshot after_finish = registry.snapshot();
  EXPECT_EQ(after_finish.histogram("svc.job.queue_ns")->count, 1u);
  EXPECT_EQ(after_finish.histogram("svc.job.run_ns")->count, 1u);
  EXPECT_EQ(after_finish.histogram("svc.job.total_ns")->count, 1u);

  // Cancelling the still-queued job counts and empties the queue.
  table.request_cancel(second->id);
  EXPECT_EQ(counter("svc.jobs.cancelled"), 1u);
  EXPECT_EQ(depth(), 0);
}

TEST(ObsService, StatsOpExposesTheRegistryAndInfoGainsTotals) {
  svc::ServerConfig config;
  config.socket_path = "/tmp/psga_obs_" + std::to_string(::getpid()) + ".sock";
  config.max_seconds = 120.0;
  svc::Server server(config);
  server.start();
  {
    svc::Client client(config.socket_path);
    svc::SubmitOptions options;
    options.generations = 3;
    const long long id = client.submit(
        "problem=flowshop instance=ta001 engine=simple pop=8 seed=1", options);
    const svc::JobRecord job = client.wait(id);
    EXPECT_EQ(job.state, svc::JobState::kDone);

    const Json stats = client.stats();
    EXPECT_TRUE(stats.find("ok")->as_bool());
    EXPECT_GE(stats.number_or("uptime_seconds", -1.0), 0.0);
    const Json* metrics = stats.find("metrics");
    ASSERT_NE(metrics, nullptr);
    const obs::MetricsSnapshot snapshot = exp::metrics_from_json(*metrics);
    ASSERT_NE(snapshot.counter("svc.jobs.admitted"), nullptr);
    EXPECT_GE(*snapshot.counter("svc.jobs.admitted"), 1u);
    ASSERT_NE(snapshot.counter("svc.jobs.completed"), nullptr);
    EXPECT_GE(*snapshot.counter("svc.jobs.completed"), 1u);
    ASSERT_NE(snapshot.histogram("svc.job.run_ns"), nullptr);
    EXPECT_GE(snapshot.histogram("svc.job.run_ns")->count, 1u);

    const Json info = client.info();
    EXPECT_FALSE(info.string_or("build_type", "").empty());
    EXPECT_GE(info.number_or("uptime_seconds", -1.0), 0.0);
    const Json* totals = info.find("totals");
    ASSERT_NE(totals, nullptr);
    EXPECT_GE(totals->number_or("admitted", -1), 1);
    EXPECT_GE(totals->number_or("completed", -1), 1);
    const Json* latency = info.find("latency");
    ASSERT_NE(latency, nullptr);
    ASSERT_NE(latency->find("run"), nullptr);
    EXPECT_GE(latency->find("run")->number_or("p50", -1.0), 0.0);
  }
  server.stop();
}

}  // namespace
}  // namespace psga
