#include "src/sched/schedule.h"

#include <gtest/gtest.h>

#include <optional>

namespace psga::sched {
namespace {

// A fixed toy world: 2 jobs x 2 ops; op (j, k) runs on machine k and lasts
// 10*(j+1).
std::optional<Time> toy_duration(const void*, int job, int /*index*/,
                                 int /*machine*/) {
  return 10 * (job + 1);
}

ValidationSpec toy_spec() {
  ValidationSpec spec;
  spec.jobs = 2;
  spec.machines = 2;
  spec.ops_per_job = {2, 2};
  spec.ordered_stages = true;
  spec.duration = &toy_duration;
  return spec;
}

Schedule feasible_toy() {
  Schedule s;
  // job 0: m0 [0,10), m1 [10,20); job 1: m0 [10,30), m1 [30,50).
  s.ops = {
      {0, 0, 0, 0, 10},
      {0, 1, 1, 10, 20},
      {1, 0, 0, 10, 30},
      {1, 1, 1, 30, 50},
  };
  return s;
}

TEST(Schedule, MakespanIsMaxEnd) {
  EXPECT_EQ(feasible_toy().makespan(), 50);
  EXPECT_EQ(Schedule{}.makespan(), 0);
}

TEST(Schedule, JobCompletionTimes) {
  const auto completion = feasible_toy().job_completion_times(2);
  EXPECT_EQ(completion[0], 20);
  EXPECT_EQ(completion[1], 50);
}

TEST(Validate, AcceptsFeasible) {
  EXPECT_EQ(validate(feasible_toy(), toy_spec()), std::nullopt);
}

TEST(Validate, RejectsMachineOverlap) {
  Schedule s = feasible_toy();
  s.ops[2].start = 5;  // job1 op0 overlaps job0 op0 on machine 0
  s.ops[2].end = 25;
  const auto error = validate(s, toy_spec());
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("overlap"), std::string::npos);
}

TEST(Validate, RejectsStageOrderViolation) {
  Schedule s = feasible_toy();
  s.ops[1].start = 5;  // job0 op1 starts before op0 ends
  s.ops[1].end = 15;
  const auto error = validate(s, toy_spec());
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("order"), std::string::npos);
}

TEST(Validate, RejectsMissingOperation) {
  Schedule s = feasible_toy();
  s.ops.pop_back();
  EXPECT_TRUE(validate(s, toy_spec()).has_value());
}

TEST(Validate, RejectsDuplicateOperation) {
  Schedule s = feasible_toy();
  s.ops.push_back(s.ops[0]);
  EXPECT_TRUE(validate(s, toy_spec()).has_value());
}

TEST(Validate, RejectsWrongDuration) {
  Schedule s = feasible_toy();
  s.ops[0].end = 12;
  const auto error = validate(s, toy_spec());
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("duration"), std::string::npos);
}

TEST(Validate, RejectsOutOfRangeIds) {
  Schedule s = feasible_toy();
  s.ops[0].machine = 9;
  EXPECT_TRUE(validate(s, toy_spec()).has_value());
  s = feasible_toy();
  s.ops[0].job = -1;
  EXPECT_TRUE(validate(s, toy_spec()).has_value());
}

TEST(Validate, EnforcesReleaseTimes) {
  ValidationSpec spec = toy_spec();
  spec.release = {5, 0};
  Schedule s = feasible_toy();  // job 0 starts at 0 < release 5
  const auto error = validate(s, spec);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("release"), std::string::npos);
}

TEST(Validate, UnorderedStagesAllowAnyOrderButNoJobOverlap) {
  ValidationSpec spec = toy_spec();
  spec.ordered_stages = false;
  // Job 0 does op1 before op0 — fine in an open shop.
  Schedule s;
  s.ops = {
      {0, 1, 1, 0, 10},
      {0, 0, 0, 10, 20},
      {1, 0, 0, 20, 40},
      {1, 1, 1, 40, 60},
  };
  EXPECT_EQ(validate(s, spec), std::nullopt);
  // But a job on two machines at once is rejected.
  s.ops[1].start = 5;
  s.ops[1].end = 15;
  const auto error = validate(s, spec);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("simultaneous"), std::string::npos);
}

Time toy_gap(const void*, int /*machine*/, int /*prev*/, int /*next*/) {
  return 5;
}

TEST(Validate, EnforcesSetupGaps) {
  ValidationSpec spec = toy_spec();
  spec.machine_gap = &toy_gap;
  Schedule s = feasible_toy();  // job1 op0 starts exactly at job0 op0 end
  const auto error = validate(s, spec);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("gap"), std::string::npos);
  // Shift to honor the 5-unit setup everywhere.
  s.ops[2].start = 15;
  s.ops[2].end = 35;
  s.ops[3].start = 40;
  s.ops[3].end = 60;
  EXPECT_EQ(validate(s, spec), std::nullopt);
}

TEST(Validate, NegativeDurationRejected) {
  Schedule s = feasible_toy();
  s.ops[0].start = 20;
  s.ops[0].end = 10;
  EXPECT_TRUE(validate(s, toy_spec()).has_value());
}

}  // namespace
}  // namespace psga::sched
