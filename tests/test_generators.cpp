#include "src/sched/generators.h"

#include <gtest/gtest.h>

namespace psga::sched {
namespace {

TEST(Generators, OpenShopDeterministicAndInRange) {
  const OpenShopInstance a = random_open_shop(6, 4, 42, 1, 50);
  const OpenShopInstance b = random_open_shop(6, 4, 42, 1, 50);
  EXPECT_EQ(a.proc, b.proc);
  for (const auto& row : a.proc) {
    for (Time p : row) {
      EXPECT_GE(p, 1);
      EXPECT_LE(p, 50);
    }
  }
}

TEST(Generators, OpenShopSeedChangesData) {
  const OpenShopInstance a = random_open_shop(6, 4, 1);
  const OpenShopInstance b = random_open_shop(6, 4, 2);
  EXPECT_NE(a.proc, b.proc);
}

TEST(Generators, HfsIdenticalMachinesHaveEqualRows) {
  HfsParams params;
  params.jobs = 5;
  params.machines_per_stage = {3, 2};
  params.unrelatedness = 1.0;
  const HybridFlowShopInstance inst = random_hybrid_flow_shop(params, 9);
  for (int s = 0; s < inst.stages(); ++s) {
    for (int j = 0; j < inst.jobs; ++j) {
      const auto& row = inst.proc[static_cast<std::size_t>(s)][static_cast<std::size_t>(j)];
      for (Time p : row) EXPECT_EQ(p, row.front());
    }
  }
}

TEST(Generators, HfsUnrelatedMachinesDiffer) {
  HfsParams params;
  params.jobs = 10;
  params.machines_per_stage = {4};
  params.unrelatedness = 3.0;
  const HybridFlowShopInstance inst = random_hybrid_flow_shop(params, 10);
  bool any_difference = false;
  for (int j = 0; j < inst.jobs; ++j) {
    const auto& row = inst.proc[0][static_cast<std::size_t>(j)];
    for (Time p : row) {
      if (p != row.front()) any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(Generators, HfsSetupsPresentOnlyWhenRequested) {
  HfsParams params;
  params.jobs = 4;
  params.machines_per_stage = {2};
  EXPECT_TRUE(random_hybrid_flow_shop(params, 1).setup.empty());
  params.setup_hi = 7;
  const HybridFlowShopInstance with = random_hybrid_flow_shop(params, 1);
  ASSERT_FALSE(with.setup.empty());
  for (int k = 0; k < 2; ++k) {
    for (int prev = -1; prev < 4; ++prev) {
      for (int next = 0; next < 4; ++next) {
        const Time s = with.setup_time(0, k, prev, next);
        EXPECT_GE(s, 1);
        EXPECT_LE(s, 7);
      }
    }
  }
}

TEST(Generators, FjsEligibilitySetsHaveRequestedSize) {
  FjsParams params;
  params.jobs = 5;
  params.machines = 6;
  params.ops_per_job = 4;
  params.eligible_machines = 3;
  const FlexibleJobShopInstance inst = random_flexible_job_shop(params, 3);
  for (int j = 0; j < inst.jobs; ++j) {
    for (int k = 0; k < inst.ops_of(j); ++k) {
      const auto& choices = inst.op(j, k).choices;
      EXPECT_EQ(choices.size(), 3u);
      // Machines distinct and sorted.
      for (std::size_t c = 1; c < choices.size(); ++c) {
        EXPECT_LT(choices[c - 1].machine, choices[c].machine);
      }
    }
  }
}

TEST(Generators, FjsEligibleCountClamped) {
  FjsParams params;
  params.machines = 2;
  params.eligible_machines = 10;  // more than machines: clamp
  const FlexibleJobShopInstance inst = random_flexible_job_shop(params, 4);
  EXPECT_EQ(inst.op(0, 0).choices.size(), 2u);
}

TEST(Generators, JobShopRoutesArePermutations) {
  const JobShopInstance inst = random_job_shop(7, 5, 77);
  for (int j = 0; j < inst.jobs; ++j) {
    std::vector<bool> seen(5, false);
    for (const auto& op : inst.ops[static_cast<std::size_t>(j)]) {
      ASSERT_FALSE(seen[static_cast<std::size_t>(op.machine)]);
      seen[static_cast<std::size_t>(op.machine)] = true;
    }
  }
}

TEST(Generators, DueDatesScaleWithWork) {
  JobAttributes attrs;
  const std::vector<Time> work = {100, 200};
  assign_due_dates(attrs, work, 1.5, 5, 8);
  ASSERT_EQ(attrs.due.size(), 2u);
  EXPECT_EQ(attrs.due[0], 150);
  EXPECT_EQ(attrs.due[1], 300);
  for (double w : attrs.weight) {
    EXPECT_GE(w, 1.0);
    EXPECT_LE(w, 5.0);
  }
}

TEST(Generators, DueDatesHonorReleaseTimes) {
  JobAttributes attrs;
  attrs.release = {50, 0};
  assign_due_dates(attrs, {100, 100}, 1.0, 3, 8);
  EXPECT_EQ(attrs.due[0], 150);
  EXPECT_EQ(attrs.due[1], 100);
}

}  // namespace
}  // namespace psga::sched
