#include "src/ga/island_cluster.h"

#include <gtest/gtest.h>

#include "src/ga/problems.h"
#include "src/sched/classics.h"
#include "src/sched/generators.h"
#include "src/sched/open_shop.h"

namespace psga::ga {
namespace {

ProblemPtr open_shop_problem() {
  return std::make_shared<OpenShopProblem>(
      sched::random_open_shop(8, 5, 77));
}

ClusterIslandConfig config(int ranks = 4) {
  ClusterIslandConfig cfg;
  cfg.ranks = ranks;
  cfg.base.population = 20;
  cfg.base.termination.max_generations = 20;
  cfg.neighbor_interval = 4;
  cfg.broadcast_interval = 10;
  return cfg;
}

TEST(ClusterIsland, RunsAndImproves) {
  const auto result = run_cluster_island_ga(open_shop_problem(), config());
  EXPECT_GT(result.best_objective, 0.0);
  EXPECT_EQ(result.islands->best.size(), 4u);
  for (double b : result.islands->best) {
    EXPECT_GE(b, result.best_objective);
  }
}

TEST(ClusterIsland, DeterministicAcrossRuns) {
  const auto a = run_cluster_island_ga(open_shop_problem(), config());
  const auto b = run_cluster_island_ga(open_shop_problem(), config());
  EXPECT_DOUBLE_EQ(a.best_objective, b.best_objective);
  EXPECT_EQ(a.islands->best, b.islands->best);
}

TEST(ClusterIsland, SingleRankWorks) {
  const auto result = run_cluster_island_ga(open_shop_problem(), config(1));
  EXPECT_EQ(result.islands->best.size(), 1u);
  EXPECT_DOUBLE_EQ(result.islands->best[0], result.best_objective);
}

TEST(ClusterIsland, FiveRanksMatchHarmananiSetup) {
  // [33] ran on a 5-machine Beowulf cluster.
  const auto result = run_cluster_island_ga(open_shop_problem(), config(5));
  EXPECT_EQ(result.islands->best.size(), 5u);
  EXPECT_GT(result.evaluations, 0);
}

TEST(ClusterIsland, MigrationHelpsVersusIsolation) {
  // Best objective with migration should be no worse than the same total
  // effort without (statistically; fixed seeds make this reproducible).
  ClusterIslandConfig with = config(4);
  ClusterIslandConfig without = config(4);
  without.neighbor_interval = 0;
  without.broadcast_interval = 0;
  const auto rw = run_cluster_island_ga(open_shop_problem(), with);
  const auto ro = run_cluster_island_ga(open_shop_problem(), without);
  EXPECT_LE(rw.best_objective, ro.best_objective * 1.05);
}

TEST(ClusterIsland, JobShopGenomesSurviveTransport) {
  // Migration serializes genomes; job-shop repetition chromosomes must
  // arrive structurally valid (validated indirectly: the run completes and
  // the final best genome is valid).
  auto js = std::make_shared<JobShopProblem>(sched::ft06().instance);
  ClusterIslandConfig cfg = config(3);
  cfg.neighbor_interval = 1;  // migrate every generation: stress transport
  const auto result = run_cluster_island_ga(js, cfg);
  EXPECT_TRUE(genome_valid(result.best, js->traits()));
  EXPECT_GE(result.best_objective, 55.0);
}

}  // namespace
}  // namespace psga::ga
