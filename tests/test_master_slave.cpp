#include "src/ga/master_slave_ga.h"

#include <gtest/gtest.h>

#include "src/ga/problems.h"
#include "src/sched/classics.h"
#include "src/sched/taillard.h"

namespace psga::ga {
namespace {

ProblemPtr problem() {
  return std::make_shared<FlowShopProblem>(
      sched::make_taillard(sched::taillard_20x5().front()));
}

GaConfig config(std::uint64_t seed = 11) {
  GaConfig cfg;
  cfg.population = 48;
  cfg.termination.max_generations = 25;
  cfg.seed = seed;
  return cfg;
}

TEST(MasterSlave, TraceIdenticalToSerialGa) {
  // The survey: the master-slave model "is the only one that does not
  // affect the behavior of the algorithm". Enforce it bit-exactly.
  SimpleGa serial(problem(), config());
  const GaResult serial_result = serial.run();
  for (int threads : {1, 2, 4, 8}) {
    par::ThreadPool pool(threads);
    MasterSlaveGa parallel(problem(), config(), &pool);
    const GaResult parallel_result = parallel.run();
    EXPECT_EQ(serial_result.history, parallel_result.history)
        << "threads=" << threads;
    EXPECT_EQ(serial_result.best.seq, parallel_result.best.seq);
    EXPECT_EQ(serial_result.evaluations, parallel_result.evaluations);
  }
}

TEST(MasterSlave, TraceIdenticalOnJobShop) {
  auto js = std::make_shared<JobShopProblem>(sched::ft06().instance);
  GaConfig cfg = config(5);
  SimpleGa serial(js, cfg);
  par::ThreadPool pool(6);
  MasterSlaveGa parallel(js, cfg, &pool);
  EXPECT_EQ(serial.run().history, parallel.run().history);
}

TEST(MasterSlave, DeterministicAcrossRuns) {
  par::ThreadPool pool(4);
  MasterSlaveGa a(problem(), config(9), &pool);
  MasterSlaveGa b(problem(), config(9), &pool);
  EXPECT_EQ(a.run().history, b.run().history);
}

TEST(MasterSlave, TimeBudgetModeCountsExploredSolutions) {
  par::ThreadPool pool(4);
  MasterSlaveGa ga(problem(), config(), &pool);
  const GaResult result = ga.run(StopCondition::time_budget(0.2));
  EXPECT_GT(result.evaluations, 0);
  EXPECT_GE(result.seconds, 0.15);
  EXPECT_LT(result.seconds, 3.0);
  // More budget => at least as many explored solutions.
  MasterSlaveGa ga2(problem(), config(), &pool);
  const GaResult longer = ga2.run(StopCondition::time_budget(0.5));
  EXPECT_GT(longer.evaluations, result.evaluations / 2);
}

TEST(MasterSlave, UsesDefaultPoolWhenNull) {
  MasterSlaveGa ga(problem(), config());
  const GaResult result = ga.run();
  EXPECT_GT(result.evaluations, 0);
}

TEST(MasterSlave, OpenMpBackendMatchesThreadPoolTrace) {
  // Backend choice must not change the algorithm — same invariance as the
  // serial/parallel equality, across runtimes.
  GaConfig pool_cfg = config(21);
  pool_cfg.eval_backend = EvalBackend::kThreadPool;
  GaConfig omp_cfg = config(21);
  omp_cfg.eval_backend = EvalBackend::kOpenMp;
  MasterSlaveGa pool_engine(problem(), pool_cfg);
  MasterSlaveGa omp_engine(problem(), omp_cfg);
  const GaResult a = pool_engine.run();
  const GaResult b = omp_engine.run();
  EXPECT_EQ(a.history, b.history);
  EXPECT_EQ(a.best.seq, b.best.seq);
}

TEST(MasterSlave, BudgetModeIgnoresGenerationCap) {
  GaConfig cfg = config();
  cfg.termination.max_generations = 1;  // would stop immediately in run()
  par::ThreadPool pool(4);
  MasterSlaveGa ga(problem(), cfg, &pool);
  const GaResult result = ga.run(StopCondition::time_budget(0.15));
  EXPECT_GT(result.generations, 1);
}

}  // namespace
}  // namespace psga::ga
