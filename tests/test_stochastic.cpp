#include "src/sched/stochastic.h"

#include <gtest/gtest.h>

#include "src/par/rng.h"
#include "src/sched/classics.h"

namespace psga::sched {
namespace {

TEST(Stochastic, DeterministicScenarios) {
  const StochasticJobShop a(ft06().instance, 0.2, 8, 42);
  const StochasticJobShop b(ft06().instance, 0.2, 8, 42);
  par::Rng rng(1);
  const auto seq = random_operation_sequence(ft06().instance, rng);
  EXPECT_DOUBLE_EQ(a.expected_makespan(seq), b.expected_makespan(seq));
}

TEST(Stochastic, DifferentSeedsDifferentScenarios) {
  const StochasticJobShop a(ft06().instance, 0.2, 8, 42);
  const StochasticJobShop b(ft06().instance, 0.2, 8, 43);
  par::Rng rng(1);
  const auto seq = random_operation_sequence(ft06().instance, rng);
  EXPECT_NE(a.expected_makespan(seq), b.expected_makespan(seq));
}

TEST(Stochastic, ZeroSpreadEqualsNominal) {
  const StochasticJobShop shop(ft06().instance, 0.0, 4, 7);
  par::Rng rng(2);
  const auto seq = random_operation_sequence(ft06().instance, rng);
  const double nominal = static_cast<double>(
      decode_operation_based(ft06().instance, seq).makespan());
  EXPECT_DOUBLE_EQ(shop.expected_makespan(seq), nominal);
}

TEST(Stochastic, ScenariosStayWithinSpread) {
  const double spread = 0.3;
  const StochasticJobShop shop(ft06().instance, spread, 10, 11);
  const auto& nominal = shop.nominal();
  for (int s = 0; s < shop.scenario_count(); ++s) {
    const auto& sample = shop.scenario(s);
    for (int j = 0; j < nominal.jobs; ++j) {
      for (int k = 0; k < nominal.ops_of(j); ++k) {
        const double base = static_cast<double>(nominal.op(j, k).duration);
        const double drawn = static_cast<double>(sample.op(j, k).duration);
        EXPECT_GE(drawn, std::max(1.0, base * (1.0 - spread) - 1.0));
        EXPECT_LE(drawn, base * (1.0 + spread) + 1.0);
        EXPECT_EQ(sample.op(j, k).machine, nominal.op(j, k).machine);
      }
    }
  }
}

TEST(Stochastic, ExpectedValueBetweenScenarioExtremes) {
  const StochasticJobShop shop(ft06().instance, 0.25, 16, 3);
  par::Rng rng(4);
  const auto seq = random_operation_sequence(ft06().instance, rng);
  double lo = 1e18;
  double hi = -1e18;
  for (int s = 0; s < shop.scenario_count(); ++s) {
    const double v = static_cast<double>(
        decode_operation_based(shop.scenario(s), seq).makespan());
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double expected = shop.expected_makespan(seq);
  EXPECT_GE(expected, lo);
  EXPECT_LE(expected, hi);
}

TEST(Stochastic, NoScenariosFallsBackToNominal) {
  const StochasticJobShop shop(ft06().instance, 0.25, 0, 3);
  par::Rng rng(4);
  const auto seq = random_operation_sequence(ft06().instance, rng);
  const double nominal = static_cast<double>(
      decode_operation_based(ft06().instance, seq).makespan());
  EXPECT_DOUBLE_EQ(shop.expected_makespan(seq), nominal);
}

}  // namespace
}  // namespace psga::sched
