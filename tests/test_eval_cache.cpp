// The evaluation cache must be an invisible optimization: with
// memoization on, every engine's best-fitness trace is bit-identical to
// the uncached run on every backend, only the number of decode calls
// changes. These tests pin that down, plus the genome hash the cache
// keys on, exact counter accounting, and LRU eviction.
#include "src/ga/eval_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "src/ga/problems.h"
#include "src/ga/solver.h"
#include "src/sched/classics.h"
#include "src/sched/taillard.h"

namespace psga::ga {
namespace {

ProblemPtr flow_shop() {
  return std::make_shared<FlowShopProblem>(
      sched::make_taillard(sched::taillard_20x5().front()));
}

Genome perm_genome(std::vector<int> seq) {
  Genome g;
  g.seq = std::move(seq);
  return g;
}

// --- genome hash -------------------------------------------------------------

TEST(GenomeHash, DeterministicAndEqualForEqualGenomes) {
  Genome a;
  a.seq = {3, 1, 0, 2};
  a.assign = {0, 1};
  a.keys = {0.25, 0.75};
  Genome b = a;
  EXPECT_EQ(genome_hash(a), genome_hash(a));
  EXPECT_EQ(genome_hash(a), genome_hash(b));
}

TEST(GenomeHash, AllPermutationsOfSixHashDistinct) {
  std::vector<int> seq = {0, 1, 2, 3, 4, 5};
  std::set<std::uint64_t> hashes;
  std::size_t count = 0;
  do {
    hashes.insert(genome_hash(perm_genome(seq)));
    ++count;
  } while (std::next_permutation(seq.begin(), seq.end()));
  EXPECT_EQ(count, 720u);
  EXPECT_EQ(hashes.size(), count) << "permutation hash collision";
}

TEST(GenomeHash, RandomPermutationAndKeyGenomesHashDistinct) {
  // Collision sweep over both encodings the survey uses most: distinct
  // genomes must map to distinct 64-bit hashes in samples far larger
  // than any population.
  par::Rng rng(99);
  const ProblemPtr problem = flow_shop();
  std::set<std::uint64_t> perm_hashes;
  std::set<std::vector<int>> perm_seen;
  for (int i = 0; i < 2000; ++i) {
    const Genome g = problem->random_genome(rng);
    perm_seen.insert(g.seq);
    perm_hashes.insert(genome_hash(g));
  }
  EXPECT_EQ(perm_hashes.size(), perm_seen.size());

  std::set<std::uint64_t> key_hashes;
  for (int i = 0; i < 2000; ++i) {
    Genome g;
    g.keys.resize(12);
    for (double& k : g.keys) k = rng.uniform();
    key_hashes.insert(genome_hash(g));
  }
  EXPECT_EQ(key_hashes.size(), 2000u) << "random-key hash collision";
}

TEST(GenomeHash, ChromosomeBoundariesDisambiguate) {
  // The same values split differently across chromosomes are different
  // genomes and must hash apart (length prefixes guarantee it).
  Genome seq_both;
  seq_both.seq = {1, 2};
  Genome split;
  split.seq = {1};
  split.assign = {2};
  Genome assign_both;
  assign_both.assign = {1, 2};
  Genome keys_only;
  keys_only.keys = {1.0, 2.0};
  std::set<std::uint64_t> hashes = {
      genome_hash(seq_both), genome_hash(split), genome_hash(assign_both),
      genome_hash(keys_only), genome_hash(Genome{})};
  EXPECT_EQ(hashes.size(), 5u);
}

TEST(GenomeHash, SingleSwapChangesHash) {
  const Genome a = perm_genome({0, 1, 2, 3, 4, 5, 6, 7});
  Genome b = a;
  std::swap(b.seq[2], b.seq[6]);
  EXPECT_NE(genome_hash(a), genome_hash(b));
}

// --- cache unit behavior -----------------------------------------------------

EvalCacheConfig one_shard(EvalCacheMode mode, std::size_t capacity) {
  EvalCacheConfig cfg;
  cfg.mode = mode;
  cfg.capacity = capacity;
  cfg.shards = 1;  // deterministic eviction order for the unit tests
  return cfg;
}

TEST(EvalCacheUnit, MissInsertHitAndCounters) {
  EvalCache cache(one_shard(EvalCacheMode::kUnbounded, 16));
  const Genome g = perm_genome({2, 0, 1});
  const std::uint64_t h = genome_hash(g);
  EXPECT_FALSE(cache.lookup(h, g).has_value());
  cache.insert(h, g, 42.5);
  const auto hit = cache.lookup(h, g);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 42.5);
  const EvalCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.inserts, 1);
  EXPECT_EQ(stats.evictions, 0);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(EvalCacheUnit, HashCollisionIsAMissAndInsertReplaces) {
  // Force a collision through the explicit-hash API: same key, different
  // genomes. The cache must never serve the wrong objective.
  EvalCache cache(one_shard(EvalCacheMode::kUnbounded, 16));
  const Genome a = perm_genome({0, 1, 2});
  const Genome b = perm_genome({2, 1, 0});
  const std::uint64_t shared_hash = 0xdeadbeefcafef00dULL;
  cache.insert(shared_hash, a, 10.0);
  EXPECT_FALSE(cache.lookup(shared_hash, b).has_value());
  cache.insert(shared_hash, b, 20.0);  // replaces the colliding entry
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_FALSE(cache.lookup(shared_hash, a).has_value());
  const auto hit = cache.lookup(shared_hash, b);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 20.0);
}

TEST(EvalCacheUnit, LruEvictsLeastRecentlyUsed) {
  EvalCache cache(one_shard(EvalCacheMode::kLru, 3));
  const Genome a = perm_genome({0, 1, 2});
  const Genome b = perm_genome({1, 2, 0});
  const Genome c = perm_genome({2, 0, 1});
  const Genome d = perm_genome({0, 2, 1});
  cache.insert(genome_hash(a), a, 1.0);
  cache.insert(genome_hash(b), b, 2.0);
  cache.insert(genome_hash(c), c, 3.0);
  EXPECT_EQ(cache.size(), 3u);
  // Touch a: recency becomes a, c, b — so the next insert evicts b.
  EXPECT_TRUE(cache.lookup(genome_hash(a), a).has_value());
  cache.insert(genome_hash(d), d, 4.0);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_FALSE(cache.lookup(genome_hash(b), b).has_value()) << "b survived";
  EXPECT_TRUE(cache.lookup(genome_hash(a), a).has_value());
  EXPECT_TRUE(cache.lookup(genome_hash(c), c).has_value());
  EXPECT_TRUE(cache.lookup(genome_hash(d), d).has_value());
}

TEST(EvalCacheUnit, UnboundedNeverEvicts) {
  EvalCache cache(one_shard(EvalCacheMode::kUnbounded, 2));
  par::Rng rng(5);
  const ProblemPtr problem = flow_shop();
  for (int i = 0; i < 50; ++i) {
    const Genome g = problem->random_genome(rng);
    cache.insert(genome_hash(g), g, static_cast<double>(i));
  }
  EXPECT_EQ(cache.stats().evictions, 0);
  EXPECT_GT(cache.size(), 2u);
}

// --- evaluator integration: exact accounting ---------------------------------

TEST(EvaluatorCache, BatchCountersMatchHandComputedDuplicates) {
  const ProblemPtr problem = flow_shop();
  par::Rng rng(7);
  std::vector<Genome> batch;
  for (int i = 0; i < 6; ++i) batch.push_back(problem->random_genome(rng));
  batch.push_back(batch[0]);  // two in-batch duplicates
  batch.push_back(batch[1]);

  Evaluator evaluator(problem, EvalBackend::kSerial);
  auto cache = std::make_shared<EvalCache>(
      one_shard(EvalCacheMode::kUnbounded, 1024));
  evaluator.set_cache(cache);
  std::vector<double> out(batch.size());
  // First pass: nothing is memoized yet; in-batch duplicates decode
  // independently (inserts land after the batch), so all 8 miss.
  evaluator.evaluate(batch, out);
  EXPECT_EQ(cache->stats().misses, 8);
  EXPECT_EQ(cache->stats().hits, 0);
  EXPECT_EQ(evaluator.decode_calls(), 8);
  EXPECT_EQ(cache->size(), 6u);
  // Second pass over the same batch: all 8 hit, zero decodes.
  std::vector<double> again(batch.size());
  evaluator.evaluate(batch, again);
  EXPECT_EQ(again, out);
  EXPECT_EQ(cache->stats().hits, 8);
  EXPECT_EQ(evaluator.decode_calls(), 8);
  EXPECT_EQ(evaluator.evaluations(), 16);
}

TEST(EvaluatorCache, HeavyElitismCloneOnlyRunDecodesEachGenomeOnce) {
  // crossover_rate = mutation_rate = 0 makes every child a verbatim copy
  // of a parent, and distinct seed genomes make the initial population
  // the complete genome universe: after the first generation decode,
  // every evaluation is a cache hit — the hand-computable extreme of the
  // heavy-elitism duplication the cache exists for.
  const ProblemPtr problem = flow_shop();
  const int pop = 12;
  const int generations = 5;
  GaConfig cfg;
  cfg.population = pop;
  cfg.elites = 4;
  cfg.ops.crossover_rate = 0.0;
  cfg.ops.mutation_rate = 0.0;
  cfg.seed = 41;
  cfg.eval_cache.mode = EvalCacheMode::kUnbounded;
  par::Rng seeder(17);
  std::set<std::uint64_t> distinct;
  while (static_cast<int>(cfg.seed_genomes.size()) < pop) {
    Genome g = problem->random_genome(seeder);
    if (distinct.insert(genome_hash(g)).second) {
      cfg.seed_genomes.push_back(std::move(g));
    }
  }
  SimpleGa engine(problem, cfg);
  const RunResult r = engine.run(StopCondition::generations(generations));
  ASSERT_TRUE(r.cache.has_value());
  EXPECT_EQ(r.cache->misses, pop);
  EXPECT_EQ(r.cache->inserts, pop);
  EXPECT_EQ(r.cache->hits, pop * generations);
  EXPECT_EQ(engine.decode_calls(), pop);
  EXPECT_EQ(r.evaluations, pop * (generations + 1));
}

TEST(EvaluatorCache, SharedAndReusedCachesReportPerRunDeltas) {
  // RunResult::cache must be this run's delta, not cache-lifetime
  // totals: rerun the same engine, and hand one pre-built cache to two
  // engines in sequence — every result keeps hits+misses==evaluations.
  const ProblemPtr problem = flow_shop();
  const StopCondition stop = StopCondition::generations(5);
  Solver solver = Solver::build(
      SolverSpec::parse("engine=simple pop=12 elites=4 seed=51 "
                        "eval_cache=unbounded"),
      problem);
  const RunResult first = solver.run(stop);
  const RunResult second = solver.run(stop);  // warm cache, same engine
  ASSERT_TRUE(second.cache.has_value());
  // The per-run delta invariant: lifetime totals span both runs, so
  // without the baseline snapshot the second result would double-count.
  EXPECT_EQ(first.cache->hits + first.cache->misses, first.evaluations);
  EXPECT_EQ(second.cache->hits + second.cache->misses, second.evaluations);

  // Engines that rebuild their inner engine — and with it the cache —
  // inside init() (memetic, master-slave, quantum) must not subtract a
  // stale baseline when a fresh cache lands at a recycled address.
  Solver memetic = Solver::build(
      SolverSpec::parse("engine=memetic pop=12 interval=2 refine=2 budget=30 "
                        "seed=55 eval_cache=unbounded"),
      problem);
  (void)memetic.run(stop);
  const RunResult rerun = memetic.run(stop);
  ASSERT_TRUE(rerun.cache.has_value());
  EXPECT_EQ(rerun.cache->hits + rerun.cache->misses, rerun.evaluations);
  EXPECT_GT(rerun.cache->misses, 0);

  auto shared = std::make_shared<EvalCache>(
      one_shard(EvalCacheMode::kUnbounded, 1024));
  for (const std::uint64_t seed : {61ull, 61ull}) {
    GaConfig cfg;
    cfg.population = 12;
    cfg.seed = seed;
    cfg.shared_eval_cache = shared;
    IslandGaConfig island_cfg;
    island_cfg.islands = 2;
    island_cfg.base = cfg;
    IslandGa engine(problem, island_cfg);
    const RunResult r = engine.run(stop);
    ASSERT_TRUE(r.cache.has_value());
    EXPECT_EQ(r.cache->hits + r.cache->misses, r.evaluations);
  }
}

TEST(EvaluatorCache, HitsPlusMissesEqualsEvaluations) {
  Solver solver = Solver::build(
      SolverSpec::parse("engine=simple pop=16 elites=6 seed=3 "
                        "eval_cache=lru:4096"),
      flow_shop());
  const RunResult r = solver.run(StopCondition::generations(8));
  ASSERT_TRUE(r.cache.has_value());
  EXPECT_EQ(r.cache->hits + r.cache->misses, r.evaluations);
  EXPECT_GE(r.cache->hits, 6 * 8) << "elites alone guarantee this many hits";
  EXPECT_NE(solver.engine().eval_cache(), nullptr);
}

// --- cache-on vs cache-off trace equivalence, all engines x backends ---------

const char* kEngineSpecs[] = {
    "engine=simple pop=20 elites=4 seed=11",
    "engine=master-slave pop=20 elites=4 seed=11",
    "engine=cellular width=5 height=4 seed=11",
    "engine=island islands=3 pop=10 interval=2 seed=11",
    "engine=islands-of-cellular islands=2 width=4 height=3 interval=2 seed=11",
    "engine=quantum islands=2 pop=8 seed=11",
    "engine=memetic pop=14 interval=2 refine=2 budget=40 seed=11",
    "engine=cluster ranks=2 pop=10 interval=2 seed=11",
};

class CacheEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(CacheEquivalence, BitIdenticalTracesAcrossBackendsAndCacheModes) {
  const std::string base = GetParam();
  const StopCondition stop = StopCondition::generations(6);
  const ProblemPtr problem = flow_shop();
  for (const char* eval : {" eval=serial", " eval=pool", " eval=omp"}) {
    SCOPED_TRACE(base + eval);
    const RunResult off =
        Solver::build(SolverSpec::parse(base + eval), problem).run(stop);
    for (const char* cache : {" eval_cache=lru:4096", " eval_cache=unbounded"}) {
      SCOPED_TRACE(cache);
      const RunResult on =
          Solver::build(SolverSpec::parse(base + eval + cache), problem)
              .run(stop);
      EXPECT_EQ(off.history, on.history);
      EXPECT_EQ(off.best.seq, on.best.seq);
      EXPECT_EQ(off.best_objective, on.best_objective);
      EXPECT_EQ(off.evaluations, on.evaluations)
          << "cache hits must count like decodes";
      ASSERT_TRUE(on.cache.has_value());
      EXPECT_EQ(on.cache->hits + on.cache->misses, on.evaluations);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllEngines, CacheEquivalence,
                         ::testing::ValuesIn(kEngineSpecs));

TEST(CacheEquivalence, TinyLruCapacityStillBitIdentical) {
  // A pathologically small LRU (constant thrash) may not save decodes,
  // but it must never change a trace.
  const StopCondition stop = StopCondition::generations(6);
  const ProblemPtr problem = flow_shop();
  const RunResult off = Solver::build(
      SolverSpec::parse("engine=island islands=3 pop=10 interval=2 seed=13"),
      problem).run(stop);
  const RunResult on = Solver::build(
      SolverSpec::parse("engine=island islands=3 pop=10 interval=2 seed=13 "
                        "eval_cache=lru:8"),
      problem).run(stop);
  EXPECT_EQ(off.history, on.history);
  EXPECT_EQ(off.best.seq, on.best.seq);
  ASSERT_TRUE(on.cache.has_value());
  EXPECT_GT(on.cache->evictions, 0) << "capacity 8 should thrash";
}

}  // namespace
}  // namespace psga::ga
