#include "src/ga/crossover.h"

#include <gtest/gtest.h>

#include <numeric>

#include "src/ga/problems.h"
#include "src/ga/registry.h"
#include "src/sched/classics.h"

namespace psga::ga {
namespace {

GenomeTraits perm_traits(int n) {
  GenomeTraits t;
  t.seq_kind = SeqKind::kPermutation;
  t.seq_length = n;
  return t;
}

GenomeTraits rep_traits(std::vector<int> repeats) {
  GenomeTraits t;
  t.seq_kind = SeqKind::kJobRepetition;
  t.repeats = std::move(repeats);
  t.seq_length = 0;
  for (int r : t.repeats) t.seq_length += r;
  return t;
}

Genome random_genome(const GenomeTraits& traits, par::Rng& rng) {
  Genome g;
  if (traits.seq_kind == SeqKind::kPermutation) {
    g.seq.resize(static_cast<std::size_t>(traits.seq_length));
    std::iota(g.seq.begin(), g.seq.end(), 0);
    rng.shuffle(g.seq);
  } else if (traits.seq_kind == SeqKind::kJobRepetition) {
    for (std::size_t j = 0; j < traits.repeats.size(); ++j) {
      for (int k = 0; k < traits.repeats[j]; ++k) {
        g.seq.push_back(static_cast<int>(j));
      }
    }
    rng.shuffle(g.seq);
  }
  if (traits.key_length > 0) {
    g.keys.resize(static_cast<std::size_t>(traits.key_length));
    for (auto& k : g.keys) k = rng.uniform();
  }
  for (int d : traits.assign_domain) {
    g.assign.push_back(static_cast<int>(rng.below(static_cast<std::uint64_t>(d))));
  }
  return g;
}

// --- property sweep: every registry crossover preserves validity -----------

struct SweepCase {
  std::string crossover;
  bool repetition;  // false = permutation traits
  int size_seed;
};

class CrossoverValidity
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(CrossoverValidity, PermutationChildrenValid) {
  const auto& [name, seed] = GetParam();
  const CrossoverPtr cx = make_crossover(name);
  if (!cx->supports(SeqKind::kPermutation)) GTEST_SKIP();
  const GenomeTraits traits = perm_traits(5 + seed % 20);
  par::Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 1);
  for (int trial = 0; trial < 25; ++trial) {
    const Genome a = random_genome(traits, rng);
    const Genome b = random_genome(traits, rng);
    Genome c1;
    Genome c2;
    cx->cross(a, b, traits, c1, c2, rng);
    ASSERT_TRUE(genome_valid(c1, traits))
        << name << " child1 invalid (trial " << trial << ")";
    ASSERT_TRUE(genome_valid(c2, traits))
        << name << " child2 invalid (trial " << trial << ")";
  }
}

TEST_P(CrossoverValidity, RepetitionChildrenValid) {
  const auto& [name, seed] = GetParam();
  const CrossoverPtr cx = make_crossover(name);
  if (!cx->supports(SeqKind::kJobRepetition)) GTEST_SKIP();
  std::vector<int> repeats;
  par::Rng setup(static_cast<std::uint64_t>(seed) + 100);
  const int jobs = 3 + seed % 5;
  for (int j = 0; j < jobs; ++j) repeats.push_back(setup.range(1, 5));
  const GenomeTraits traits = rep_traits(repeats);
  par::Rng rng(static_cast<std::uint64_t>(seed) * 104729 + 3);
  for (int trial = 0; trial < 25; ++trial) {
    const Genome a = random_genome(traits, rng);
    const Genome b = random_genome(traits, rng);
    Genome c1;
    Genome c2;
    cx->cross(a, b, traits, c1, c2, rng);
    ASSERT_TRUE(genome_valid(c1, traits)) << name;
    ASSERT_TRUE(genome_valid(c2, traits)) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOperators, CrossoverValidity,
    ::testing::Combine(
        ::testing::Values("one-point", "two-point", "pmx", "ox", "cycle",
                          "position-based", "jox", "ppx", "thx"),
        ::testing::Range(0, 6)));

// --- targeted semantics ------------------------------------------------------

TEST(Pmx, WindowComesFromOtherParent) {
  PmxCrossover cx;
  const GenomeTraits traits = perm_traits(8);
  par::Rng rng(42);
  Genome a = random_genome(traits, rng);
  Genome b = random_genome(traits, rng);
  Genome c1;
  Genome c2;
  cx.cross(a, b, traits, c1, c2, rng);
  // Every position of child1 comes from a or b.
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(c1.seq[i] == a.seq[i] || c1.seq[i] == b.seq[i] ||
                std::find(b.seq.begin(), b.seq.end(), c1.seq[i]) != b.seq.end());
  }
}

TEST(Cycle, EveryGeneFromOneOfTheParentsAtSamePosition) {
  CycleCrossover cx;
  const GenomeTraits traits = perm_traits(10);
  par::Rng rng(43);
  const Genome a = random_genome(traits, rng);
  const Genome b = random_genome(traits, rng);
  Genome c1;
  Genome c2;
  cx.cross(a, b, traits, c1, c2, rng);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(c1.seq[i] == a.seq[i] || c1.seq[i] == b.seq[i]);
    EXPECT_TRUE(c2.seq[i] == a.seq[i] || c2.seq[i] == b.seq[i]);
    // Complementary choice.
    if (c1.seq[i] == a.seq[i]) EXPECT_EQ(c2.seq[i], b.seq[i]);
  }
}

TEST(Cycle, IdenticalParentsYieldIdenticalChildren) {
  CycleCrossover cx;
  const GenomeTraits traits = perm_traits(6);
  par::Rng rng(44);
  const Genome a = random_genome(traits, rng);
  Genome c1;
  Genome c2;
  cx.cross(a, a, traits, c1, c2, rng);
  EXPECT_EQ(c1.seq, a.seq);
  EXPECT_EQ(c2.seq, a.seq);
}

TEST(Jox, ChosenJobsKeepPositions) {
  // With identical parents JOX must reproduce the parent.
  JoxCrossover cx;
  const GenomeTraits traits = rep_traits({2, 2, 2});
  par::Rng rng(45);
  const Genome a = random_genome(traits, rng);
  Genome c1;
  Genome c2;
  cx.cross(a, a, traits, c1, c2, rng);
  EXPECT_EQ(c1.seq, a.seq);
  EXPECT_EQ(c2.seq, a.seq);
}

TEST(Ppx, PrecedencePreserved) {
  // PPX output must preserve the relative order of any job's occurrences
  // (trivially true for repetition chromosomes) and, for permutations,
  // every element's precedence must come from one of the parents. Check
  // the repetition multiset here.
  PpxCrossover cx;
  const GenomeTraits traits = rep_traits({3, 3});
  par::Rng rng(46);
  for (int t = 0; t < 20; ++t) {
    const Genome a = random_genome(traits, rng);
    const Genome b = random_genome(traits, rng);
    Genome c1;
    Genome c2;
    cx.cross(a, b, traits, c1, c2, rng);
    ASSERT_TRUE(genome_valid(c1, traits));
    ASSERT_TRUE(genome_valid(c2, traits));
  }
}

TEST(UniformKeys, ChildrenAreGeneWiseParentMix) {
  UniformKeyCrossover cx(0.5);
  GenomeTraits traits;
  traits.seq_kind = SeqKind::kNone;
  traits.key_length = 16;
  par::Rng rng(47);
  const Genome a = random_genome(traits, rng);
  const Genome b = random_genome(traits, rng);
  Genome c1;
  Genome c2;
  cx.cross(a, b, traits, c1, c2, rng);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_TRUE(c1.keys[i] == a.keys[i] || c1.keys[i] == b.keys[i]);
    // Complementary children.
    if (c1.keys[i] == a.keys[i]) EXPECT_EQ(c2.keys[i], b.keys[i]);
  }
}

TEST(ArithmeticKeys, ChildrenWithinParentRange) {
  ArithmeticKeyCrossover cx;
  GenomeTraits traits;
  traits.seq_kind = SeqKind::kNone;
  traits.key_length = 8;
  par::Rng rng(48);
  const Genome a = random_genome(traits, rng);
  const Genome b = random_genome(traits, rng);
  Genome c1;
  Genome c2;
  cx.cross(a, b, traits, c1, c2, rng);
  for (std::size_t i = 0; i < 8; ++i) {
    const double lo = std::min(a.keys[i], b.keys[i]);
    const double hi = std::max(a.keys[i], b.keys[i]);
    EXPECT_GE(c1.keys[i], lo - 1e-12);
    EXPECT_LE(c1.keys[i], hi + 1e-12);
  }
}

TEST(AssignChannel, RecombinedWithinDomains) {
  OxCrossover cx;
  GenomeTraits traits = perm_traits(6);
  traits.assign_domain = {2, 3, 2, 4, 2, 3};
  par::Rng rng(49);
  const Genome a = random_genome(traits, rng);
  const Genome b = random_genome(traits, rng);
  Genome c1;
  Genome c2;
  cx.cross(a, b, traits, c1, c2, rng);
  ASSERT_TRUE(genome_valid(c1, traits));
  ASSERT_TRUE(genome_valid(c2, traits));
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(c1.assign[i] == a.assign[i] || c1.assign[i] == b.assign[i]);
  }
}

// --- MSXF / path relinking ---------------------------------------------------

TEST(Msxf, ChildNeverWorseThanStartingParent) {
  auto problem = std::make_shared<JobShopProblem>(sched::ft06().instance);
  MsxfCrossover cx(problem, 12);
  par::Rng rng(50);
  for (int t = 0; t < 10; ++t) {
    const Genome a = problem->random_genome(rng);
    const Genome b = problem->random_genome(rng);
    Genome c1;
    Genome c2;
    cx.cross(a, b, problem->traits(), c1, c2, rng);
    ASSERT_TRUE(genome_valid(c1, problem->traits()));
    ASSERT_TRUE(genome_valid(c2, problem->traits()));
    EXPECT_LE(problem->objective(c1), problem->objective(a) + 1e-9);
    EXPECT_LE(problem->objective(c2), problem->objective(b) + 1e-9);
  }
}

TEST(PathRelink, ChildValidAndNotWorseThanStart) {
  auto problem = std::make_shared<JobShopProblem>(sched::ft06().instance);
  PathRelinkCrossover cx(problem, 6);
  par::Rng rng(51);
  for (int t = 0; t < 10; ++t) {
    const Genome a = problem->random_genome(rng);
    const Genome b = problem->random_genome(rng);
    Genome c1;
    Genome c2;
    cx.cross(a, b, problem->traits(), c1, c2, rng);
    ASSERT_TRUE(genome_valid(c1, problem->traits()));
    EXPECT_LE(problem->objective(c1), problem->objective(a) + 1e-9);
  }
}

}  // namespace
}  // namespace psga::ga
