#include "src/sched/dynamic.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/ga/problems.h"
#include "src/ga/simple_ga.h"
#include "src/par/rng.h"
#include "src/sched/classics.h"
#include "src/sched/generators.h"

namespace psga::sched {
namespace {

JobShopInstance tiny() {
  JobShopInstance inst;
  inst.jobs = 2;
  inst.machines = 2;
  inst.ops = {
      {{0, 3}, {1, 2}},
      {{1, 4}, {0, 1}},
  };
  return inst;
}

TEST(DowntimeDecode, NoDowntimeMatchesPlainDecode) {
  const JobShopInstance inst = tiny();
  const std::vector<int> seq = {0, 1, 0, 1};
  const Schedule plain = decode_operation_based(inst, seq);
  const Schedule with = decode_with_downtime(inst, seq, {});
  EXPECT_EQ(plain.makespan(), with.makespan());
}

TEST(DowntimeDecode, OperationPushedPastWindow) {
  const JobShopInstance inst = tiny();
  const std::vector<int> seq = {0, 1, 0, 1};
  // Plain: j0 op0 on m0 [0,3). Block m0 during [1,5): op must start at 5.
  const std::vector<Downtime> windows = {{0, 1, 5}};
  const Schedule s = decode_with_downtime(inst, seq, windows);
  EXPECT_EQ(s.ops[0].start, 5);
  EXPECT_EQ(s.ops[0].end, 8);
  // No op overlaps the window.
  for (const auto& op : s.ops) {
    if (op.machine == 0) {
      EXPECT_TRUE(op.end <= 1 || op.start >= 5);
    }
  }
}

TEST(DowntimeDecode, BackToBackWindowsChainCorrectly) {
  const JobShopInstance inst = tiny();
  const std::vector<int> seq = {0, 1, 0, 1};
  const std::vector<Downtime> windows = {{0, 1, 4}, {0, 4, 6}, {0, 7, 8}};
  const Schedule s = decode_with_downtime(inst, seq, windows);
  // j0 op0 (3 units on m0) cannot fit in [0,1), is pushed past [1,4) and
  // [4,6), cannot fit in [6,7), so starts at 8.
  EXPECT_EQ(s.ops[0].start, 8);
  EXPECT_EQ(validate(s, inst.validation_spec()), std::nullopt);
}

TEST(SimulateDynamic, RightShiftNeverBeatsNoDisruption) {
  par::Rng rng(1);
  const JobShopInstance& inst = ft06().instance;
  const auto seq = random_operation_sequence(inst, rng);
  const auto windows = random_downtimes(6, 4, 40, 5, 15, 7);
  const DynamicRunResult result = simulate_dynamic(inst, seq, windows);
  EXPECT_GE(result.realized_makespan, result.predictive_makespan);
  EXPECT_EQ(result.replans, 0);
}

TEST(SimulateDynamic, ReactiveReplanCountsAndHelps) {
  par::Rng rng(2);
  const JobShopInstance& inst = ft06().instance;
  const auto seq = random_operation_sequence(inst, rng);
  const auto windows = random_downtimes(6, 3, 30, 10, 20, 11);

  const DynamicRunResult passive = simulate_dynamic(inst, seq, windows);

  // Reactive: re-optimize the remaining operations with a short GA.
  std::vector<Downtime> window_vec(windows.begin(), windows.end());
  auto replanner = [&](const ReplanContext& context) {
    auto problem = std::make_shared<ga::DynamicSuffixProblem>(
        &inst, context.frozen_prefix, context.remaining, window_vec);
    ga::GaConfig cfg;
    cfg.population = 20;
    cfg.termination.max_generations = 15;
    cfg.seed = 5;
    ga::SimpleGa engine(problem, cfg);
    const ga::GaResult r = engine.run();
    ga::Genome incumbent;
    incumbent.seq = context.remaining;
    return problem->objective(incumbent) <= r.best_objective
               ? context.remaining
               : r.best.seq;
  };
  const DynamicRunResult reactive =
      simulate_dynamic(inst, seq, windows, replanner);
  EXPECT_GT(reactive.replans, 0);
  EXPECT_LE(reactive.realized_makespan, passive.realized_makespan);
  // The realized schedule is still feasible.
  EXPECT_EQ(validate(reactive.realized_schedule, inst.validation_spec()),
            std::nullopt);
}

TEST(SimulateDynamic, ReplannerReturningGarbageIsRejected) {
  par::Rng rng(3);
  const JobShopInstance& inst = ft06().instance;
  const auto seq = random_operation_sequence(inst, rng);
  const auto windows = random_downtimes(6, 2, 30, 5, 10, 13);
  auto bad_replanner = [](const ReplanContext& context) {
    std::vector<int> wrong = context.remaining;
    if (!wrong.empty()) wrong[0] = (wrong[0] + 1) % 6;  // breaks multiset
    return wrong;
  };
  const DynamicRunResult result =
      simulate_dynamic(inst, seq, windows, bad_replanner);
  EXPECT_EQ(result.replans, 0);  // rejected
  EXPECT_EQ(validate(result.realized_schedule, inst.validation_spec()),
            std::nullopt);
}

TEST(RandomDowntimes, DeterministicAndWellFormed) {
  const auto a = random_downtimes(5, 10, 100, 5, 20, 42);
  const auto b = random_downtimes(5, 10, 100, 5, 20, 42);
  ASSERT_EQ(a.size(), 10u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].machine, b[i].machine);
    EXPECT_EQ(a[i].start, b[i].start);
    EXPECT_GE(a[i].machine, 0);
    EXPECT_LT(a[i].machine, 5);
    EXPECT_GT(a[i].end, a[i].start);
  }
}

// The session layer's rebasing contract, fuzzed: splitting a plan at a
// disruption instant must lose nothing. For random instances, sequences,
// downtime sets and split instants:
//   * frozen_prefix + remaining reassemble the sequence exactly;
//   * the freeze rule holds (prefix ops start before `now`, the first
//     remaining op does not);
//   * realizing frozen + remaining reproduces the full decode's makespan
//     (split → realize is the identity under right-shift);
//   * DynamicSuffixProblem's scalar decode of any legal suffix agrees
//     with realized_makespan_with_prefix on the original instance — the
//     objective a replanning GA optimizes IS the realized makespan.
TEST(SplitAt, FuzzRebaseAgreesWithFullDecode) {
  par::Rng rng(99);
  for (int t = 0; t < 60; ++t) {
    const int jobs = 3 + static_cast<int>(rng.below(5));
    const int machines = 2 + static_cast<int>(rng.below(4));
    const JobShopInstance inst =
        random_job_shop(jobs, machines, 1000 + static_cast<std::uint64_t>(t));
    const std::vector<int> seq = random_operation_sequence(inst, rng);
    const Time horizon = decode_operation_based(inst, seq).makespan();
    const std::vector<Downtime> windows = random_downtimes(
        machines, static_cast<int>(rng.below(4)), horizon, 1,
        horizon / 4 + 1, 77 + static_cast<std::uint64_t>(t));
    const Schedule full = decode_with_downtime(inst, seq, windows);
    const Time now = rng.range(0, static_cast<int>(horizon) + 10);

    const ReplanContext context = split_at(inst, seq, windows, now);
    const std::size_t frozen = context.frozen_prefix.size();
    ASSERT_LE(frozen, seq.size());
    ASSERT_EQ(context.frozen_prefix.size() + context.remaining.size(),
              seq.size());
    for (std::size_t i = 0; i < frozen; ++i) {
      EXPECT_EQ(context.frozen_prefix[i], seq[i]);
      EXPECT_LT(full.ops[i].start, now);
    }
    for (std::size_t i = 0; i < context.remaining.size(); ++i) {
      EXPECT_EQ(context.remaining[i], seq[frozen + i]);
    }
    if (frozen < seq.size()) EXPECT_GE(full.ops[frozen].start, now);

    EXPECT_EQ(realized_makespan_with_prefix(inst, context.frozen_prefix,
                                            context.remaining, windows),
              full.makespan());

    ga::DynamicSuffixProblem problem(&inst, context.frozen_prefix,
                                     context.remaining, windows);
    for (int s = 0; s < 3; ++s) {
      const ga::Genome suffix = problem.random_genome(rng);
      EXPECT_EQ(problem.objective(suffix),
                static_cast<double>(realized_makespan_with_prefix(
                    inst, context.frozen_prefix, suffix.seq, windows)));
    }
  }
}

TEST(DynamicSuffixProblem, GenomesArePermutationsOfRemaining) {
  const JobShopInstance& inst = ft06().instance;
  const std::vector<int> prefix = {0, 1, 2};
  std::vector<int> remaining;
  for (int j = 0; j < 6; ++j) {
    for (int k = 0; k < 6; ++k) remaining.push_back(j);
  }
  // The prefix dispatched the first op of jobs 0, 1 and 2 — drop one
  // occurrence of each so prefix + suffix stays a valid op multiset
  // (erasing the first three genes dropped three job-0 ops instead,
  // which made the decoder read past job 1's and 2's routes).
  for (int j : prefix) {
    remaining.erase(std::find(remaining.begin(), remaining.end(), j));
  }
  ga::DynamicSuffixProblem problem(&inst, prefix, remaining, {});
  par::Rng rng(4);
  for (int t = 0; t < 10; ++t) {
    const ga::Genome g = problem.random_genome(rng);
    EXPECT_TRUE(genome_valid(g, problem.traits()));
    EXPECT_GT(problem.objective(g), 0.0);
  }
}

}  // namespace
}  // namespace psga::sched
