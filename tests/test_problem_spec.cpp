// The problem registry + ProblemSpec lockdown: parse/build/to_string
// round-trips across every registered problem, structured errors for
// unknown problem/criterion tokens and unresolvable instance= values
// (mirroring the malformed-token tests in test_solver_facade.cpp), the
// combined RunSpec split, and the Taillard single-source-of-truth check
// (generator output byte-equals the committed data files).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>

#include "src/ga/problem_registry.h"
#include "src/ga/problem_spec.h"
#include "src/ga/solver.h"
#include "src/par/rng.h"
#include "src/sched/io.h"
#include "src/sched/taillard.h"

#ifndef PSGA_DATA_DIR
#define PSGA_DATA_DIR "data"
#endif

namespace psga::ga {
namespace {

// One representative (small, fast-to-build) spec per registered problem.
// RoundTripCoversEveryRegisteredProblem asserts this map stays in sync
// with the registry, so adding a problem without extending the suite
// fails loudly.
const std::map<std::string, std::string>& representative_specs() {
  static const std::map<std::string, std::string> specs = {
      {"flowshop", "problem=flowshop instance=ta001"},
      {"jobshop", "problem=jobshop instance=ft06 decoder=active"},
      {"openshop",
       "problem=openshop decoder=lpt-machine "
       "instance=gen:jobs=4,machines=3,seed=5"},
      {"hybrid-flowshop",
       "problem=hybrid-flowshop instance=gen:jobs=5,stages=2x2,seed=5"},
      {"flexible-jobshop",
       "problem=flexible-jobshop "
       "instance=gen:jobs=4,machines=3,ops=3,eligible=2,seed=5"},
      {"lot-streaming",
       "problem=lot-streaming "
       "instance=gen:jobs=3,stages=2x2,sublots=2,seed=5"},
      {"fuzzy-flowshop",
       "problem=fuzzy-flowshop instance=gen:jobs=5,machines=3,seed=5 "
       "spread=0.25"},
      {"stochastic-jobshop",
       "problem=stochastic-jobshop instance=gen:jobs=4,machines=3,seed=5 "
       "scenarios=3 instance-seed=9"},
      {"energy-flowshop",
       "problem=energy-flowshop instance=gen:jobs=5,machines=3,seed=5 "
       "w-makespan=0.5 w-energy=0.02 w-peak=1.5 instance-seed=4"},
      {"dynamic-jobshop",
       "problem=dynamic-jobshop instance=gen:jobs=4,machines=3,seed=5 "
       "downtimes=2 instance-seed=3"},
  };
  return specs;
}

// --- registry ----------------------------------------------------------------

TEST(ProblemRegistry, ListsBuiltinsWithDescriptions) {
  const std::vector<std::string> names = problem_names();
  for (const char* expected :
       {"flowshop", "jobshop", "openshop", "hybrid-flowshop",
        "flexible-jobshop", "lot-streaming", "fuzzy-flowshop",
        "stochastic-jobshop", "energy-flowshop", "dynamic-jobshop"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected << " missing from problem_names()";
  }
  for (const RegistryEntry& entry : problem_catalog()) {
    EXPECT_FALSE(entry.description.empty())
        << "problem '" << entry.name << "' has no description";
  }
}

TEST(ProblemRegistry, EngineCatalogDescribesEveryEngine) {
  const std::vector<RegistryEntry> catalog = engine_catalog();
  EXPECT_GE(catalog.size(), 8u);
  for (const RegistryEntry& entry : catalog) {
    EXPECT_FALSE(entry.description.empty())
        << "engine '" << entry.name << "' has no description";
  }
}

TEST(ProblemRegistry, RegisterProblemExtendsSpecLanguage) {
  register_problem(
      "test-flowshop",
      [](const ProblemSpec& spec) {
        ProblemSpec inner = spec;
        inner.problem = "flowshop";
        return inner.build();
      },
      "registration smoke test");
  const ProblemPtr built =
      ProblemSpec::parse("problem=test-flowshop instance=ta001").build();
  ASSERT_NE(built, nullptr);
  EXPECT_GT(built->traits().seq_length, 0);
}

// --- round-trips -------------------------------------------------------------

TEST(ProblemSpec, RoundTripCoversEveryRegisteredProblem) {
  for (const std::string& name : problem_names()) {
    if (name == "test-flowshop") continue;  // registered by the test above
    ASSERT_TRUE(representative_specs().count(name))
        << "no representative spec for registered problem '" << name
        << "' — extend representative_specs()";
  }
}

TEST(ProblemSpec, ParseBuildToStringRoundTripsAllProblems) {
  for (const auto& [name, text] : representative_specs()) {
    const ProblemSpec spec = ProblemSpec::parse(text);
    EXPECT_EQ(spec.problem, name);
    // to_string -> parse is the identity.
    EXPECT_EQ(ProblemSpec::parse(spec.to_string()), spec) << text;
    // The spec builds a usable problem: a random genome evaluates to a
    // finite objective.
    const ProblemPtr problem = spec.build();
    ASSERT_NE(problem, nullptr) << text;
    par::Rng rng(7);
    const Genome genome = problem->random_genome(rng);
    EXPECT_TRUE(std::isfinite(problem->objective(genome))) << text;
  }
}

TEST(ProblemSpec, FuzzedOptionalFieldsSurviveRoundTrip) {
  // Cross optional fields over their sensible carriers; every rendered
  // form must reparse to the identical spec (the SolverSpec fuzz suite's
  // problem-side twin).
  using sched::Criterion;
  for (const Criterion criterion :
       {Criterion::kMakespan, Criterion::kTotalWeightedCompletion,
        Criterion::kTotalWeightedTardiness, Criterion::kWeightedUnitPenalty,
        Criterion::kMaxTardiness}) {
    for (const char* encoding : {"permutation", "random-key"}) {
      ProblemSpec spec;
      spec.problem = "flowshop";
      spec.instance = "ta002";
      spec.criterion = criterion;
      spec.encoding = encoding;
      EXPECT_EQ(ProblemSpec::parse(spec.to_string()), spec);
    }
  }
  ProblemSpec spec;
  spec.problem = "stochastic-jobshop";
  spec.instance = "gen:jobs=4,machines=3,seed=11";
  spec.instance_seed = 0xFFFFFFFFFFFFFFFFull;  // full-range u64 survives
  spec.spread = 0.125;
  spec.scenarios = 5;
  EXPECT_EQ(ProblemSpec::parse(spec.to_string()), spec);
  ProblemSpec energy;
  energy.problem = "energy-flowshop";
  energy.instance = "gen:jobs=5,machines=3,seed=5";
  energy.w_makespan = 0.1;
  energy.w_energy = 1.0 / 3.0;  // needs max_digits10 to survive
  energy.w_peak = 2.5;
  EXPECT_EQ(ProblemSpec::parse(energy.to_string()), energy);
}

TEST(ProblemSpec, CriterionAliasesRenderCanonically) {
  EXPECT_EQ(ProblemSpec::parse("criterion=total_flow instance=ta001"),
            ProblemSpec::parse("criterion=total-flow instance=ta001"));
  EXPECT_EQ(ProblemSpec::parse("criterion=cmax instance=ta001"),
            ProblemSpec::parse("criterion=makespan instance=ta001"));
  EXPECT_NE(ProblemSpec::parse("criterion=total_flow instance=ta001")
                .to_string()
                .find("criterion=total-flow"),
            std::string::npos);
  // encoding/decoder aliases canonicalize too, so equivalent specs share
  // one canonical string (one sweep cache key, one provenance form).
  EXPECT_EQ(ProblemSpec::parse("encoding=random_key instance=ta001"),
            ProblemSpec::parse("encoding=random-key instance=ta001"));
  EXPECT_EQ(ProblemSpec::parse(
                "problem=jobshop decoder=giffler-thompson instance=ft06"),
            ProblemSpec::parse("problem=jobshop decoder=active instance=ft06"));
}

TEST(ProblemSpec, InfersProblemFamilyFromInstance) {
  EXPECT_EQ(ProblemSpec::parse("instance=ta003").problem, "flowshop");
  EXPECT_EQ(ProblemSpec::parse("instance=data/ta001.fsp").problem, "flowshop");
  EXPECT_EQ(ProblemSpec::parse("instance=ft06").problem, "jobshop");
  EXPECT_EQ(ProblemSpec::parse("instance=la01").problem, "jobshop");
  EXPECT_EQ(ProblemSpec::parse("instance=data/ft10.jsp").problem, "jobshop");
  // An explicit problem= token always wins over inference.
  EXPECT_EQ(
      ProblemSpec::parse("problem=fuzzy-flowshop instance=ta001").problem,
      "fuzzy-flowshop");
}

TEST(ProblemSpec, SpecBuiltProblemMatchesDirectConstruction) {
  const ProblemPtr from_spec = ProblemSpec::parse("instance=ta001").build();
  const auto direct =
      make_problem(sched::make_taillard(sched::taillard_20x5().front()));
  ASSERT_EQ(from_spec->traits().seq_length, direct->traits().seq_length);
  par::Rng rng(13);
  for (int i = 0; i < 5; ++i) {
    const Genome genome = direct->random_genome(rng);
    EXPECT_EQ(from_spec->objective(genome), direct->objective(genome));
  }
}

// --- structured errors -------------------------------------------------------

TEST(ProblemSpec, UnknownProblemListsRegisteredNames) {
  try {
    ProblemSpec::parse("problem=warp-shop instance=ta001").build();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("warp-shop"), std::string::npos);
    EXPECT_NE(message.find("flowshop"), std::string::npos);
    // The canonical spec rides along for fail-soft callers.
    EXPECT_NE(message.find("[problem spec: problem=warp-shop"),
              std::string::npos);
  }
}

TEST(ProblemSpec, UnresolvableInstanceCarriesCanonicalSpec) {
  try {
    ProblemSpec::parse("problem=flowshop instance=nope.xyz").build();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("nope.xyz"), std::string::npos);
    EXPECT_NE(
        message.find("[problem spec: problem=flowshop instance=nope.xyz]"),
        std::string::npos);
  }
}

TEST(ProblemSpec, MissingInstanceFileIsAnError) {
  EXPECT_THROW(
      ProblemSpec::parse("problem=flowshop instance=does-not-exist.fsp")
          .build(),
      std::invalid_argument);
  EXPECT_THROW(ProblemSpec::parse("problem=flowshop").build(),
               std::invalid_argument);  // instance= required
}

TEST(ProblemSpec, MalformedTokensThrow) {
  EXPECT_THROW(ProblemSpec::parse("problem"), std::invalid_argument);
  EXPECT_THROW(ProblemSpec::parse("problem="), std::invalid_argument);
  EXPECT_THROW(ProblemSpec::parse("warp=1"), std::invalid_argument);
  EXPECT_THROW(ProblemSpec::parse("criterion=speed"), std::invalid_argument);
  EXPECT_THROW(ProblemSpec::parse("scenarios=many"), std::invalid_argument);
  EXPECT_THROW(ProblemSpec::parse("spread=wide"), std::invalid_argument);
}

TEST(ProblemSpec, UnknownGenKeysNameTheFamily) {
  try {
    ProblemSpec::parse("problem=openshop instance=gen:bogus=1").build();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("bogus"), std::string::npos);
    EXPECT_NE(message.find("openshop"), std::string::npos);
  }
  // Malformed gen pairs and malformed numbers inside gen: throw too.
  EXPECT_THROW(
      ProblemSpec::parse("problem=openshop instance=gen:jobs").build(),
      std::invalid_argument);
  EXPECT_THROW(
      ProblemSpec::parse("problem=openshop instance=gen:jobs=x").build(),
      std::invalid_argument);
  // Taillard's LCG rejects out-of-range flow-shop seeds instead of
  // silently truncating (0 is a fixed point, > 2^31-2 would wrap).
  EXPECT_THROW(ProblemSpec::parse("instance=gen:seed=0").build(),
               std::invalid_argument);
  EXPECT_THROW(ProblemSpec::parse("instance=gen:seed=4294967296").build(),
               std::invalid_argument);
}

TEST(ProblemSpec, FactoriesRejectFieldsTheyCannotHonor) {
  // lot-streaming has a fixed makespan objective.
  EXPECT_THROW(ProblemSpec::parse("problem=lot-streaming criterion=makespan "
                                  "instance=gen:jobs=3,stages=2x2,seed=1")
                   .build(),
               std::invalid_argument);
  // flow shops have no decoder= axis.
  EXPECT_THROW(
      ProblemSpec::parse("problem=flowshop decoder=active instance=ta001")
          .build(),
      std::invalid_argument);
  // rule chromosomes always decode Giffler-Thompson.
  EXPECT_THROW(ProblemSpec::parse("problem=jobshop encoding=rules "
                                  "decoder=semi-active instance=ft06")
                   .build(),
               std::invalid_argument);
  // unknown encoding / decoder values.
  EXPECT_THROW(
      ProblemSpec::parse("problem=flowshop encoding=tree instance=ta001")
          .build(),
      std::invalid_argument);
  EXPECT_THROW(
      ProblemSpec::parse("problem=jobshop decoder=lazy instance=ft06").build(),
      std::invalid_argument);
  EXPECT_THROW(ProblemSpec::parse("problem=openshop decoder=lpt-job "
                                  "instance=gen:jobs=4,machines=3,seed=1")
                   .build(),
               std::invalid_argument);
}

TEST(ProblemSpec, EncodingVariantsBuildDistinctChromosomes) {
  const ProblemPtr keys =
      ProblemSpec::parse("problem=flowshop encoding=random-key instance=ta001")
          .build();
  EXPECT_EQ(keys->traits().seq_kind, SeqKind::kNone);
  EXPECT_GT(keys->traits().key_length, 0);
  const ProblemPtr rules =
      ProblemSpec::parse("problem=jobshop encoding=rules instance=ft06")
          .build();
  EXPECT_EQ(rules->traits().seq_kind, SeqKind::kNone);
  EXPECT_FALSE(rules->traits().assign_domain.empty());
}

// --- combined RunSpec --------------------------------------------------------

TEST(RunSpec, SplitsProblemAndSolverHalves) {
  const RunSpec spec = RunSpec::parse(
      "problem=jobshop instance=ft06 decoder=active engine=island islands=3 "
      "pop=8 seed=5");
  EXPECT_EQ(spec.problem.problem, "jobshop");
  EXPECT_EQ(spec.problem.instance, "ft06");
  EXPECT_EQ(spec.problem.decoder, std::optional<std::string>("active"));
  EXPECT_EQ(spec.solver.engine, "island");
  EXPECT_EQ(spec.solver.islands, std::optional<int>(3));
  EXPECT_EQ(spec.solver.population, std::optional<int>(8));
  // Token order does not matter; the canonical form round-trips.
  EXPECT_EQ(RunSpec::parse("engine=island islands=3 seed=5 pop=8 "
                           "decoder=active problem=jobshop instance=ft06"),
            spec);
  EXPECT_EQ(RunSpec::parse(spec.to_string()), spec);
}

TEST(RunSpec, UnknownKeysReportThroughSolverSpec) {
  // Keys owned by neither language fall to SolverSpec, whose parser
  // names the offending token.
  try {
    RunSpec::parse("problem=flowshop instance=ta001 warp=9");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("warp=9"), std::string::npos);
  }
}

TEST(RunSpec, SolverBuildRecordsProblemProvenance) {
  Solver solver = Solver::build(RunSpec::parse(
      "problem=flowshop instance=ta001 engine=simple pop=10 seed=3"));
  EXPECT_EQ(solver.problem_spec(), "problem=flowshop instance=ta001");
  const RunResult result = solver.run(StopCondition::generations(2));
  EXPECT_EQ(result.problem, "problem=flowshop instance=ta001");
  // A directly built solver carries no provenance.
  const RunResult direct =
      Solver::build(SolverSpec::parse("engine=simple pop=10 seed=3"),
                    make_problem(sched::make_taillard(
                        sched::taillard_20x5().front())))
          .run(StopCondition::generations(2));
  EXPECT_TRUE(direct.problem.empty());
  EXPECT_EQ(result.history, direct.history);
}

// --- Taillard single source of truth -----------------------------------------

TEST(TaillardData, GeneratorOutputByteEqualsCommittedFiles) {
  // The committed data/ta*.fsp files are cached copies of the embedded
  // generator's output (the single source of truth): serializing the
  // regenerated instance must reproduce each file byte for byte, so the
  // file-path and benchmark-name instance sources can never drift apart.
  for (const sched::TaillardBenchmark& bench : sched::taillard_20x5()) {
    const std::string path =
        std::string(PSGA_DATA_DIR) + "/" + bench.name + ".fsp";
    std::ifstream file(path);
    ASSERT_TRUE(file) << "missing " << path;
    std::ostringstream text;
    text << file.rdbuf();
    EXPECT_EQ(sched::format_flow_shop(sched::make_taillard(bench)),
              text.str())
        << bench.name << " drifted from the embedded generator";
  }
}

TEST(TaillardData, FileAndNameInstanceSourcesAgree) {
  const std::string path = std::string(PSGA_DATA_DIR) + "/ta001.fsp";
  const ProblemPtr from_file =
      ProblemSpec::parse("problem=flowshop instance=" + path).build();
  const ProblemPtr from_name = ProblemSpec::parse("instance=ta001").build();
  par::Rng rng(3);
  for (int i = 0; i < 5; ++i) {
    const Genome genome = from_name->random_genome(rng);
    EXPECT_EQ(from_file->objective(genome), from_name->objective(genome));
  }
}

}  // namespace
}  // namespace psga::ga
