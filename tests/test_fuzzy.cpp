#include "src/sched/fuzzy.h"

#include <gtest/gtest.h>

#include <numeric>

#include "src/ga/problems.h"
#include "src/sched/taillard.h"

namespace psga::sched {
namespace {

TEST(TriFuzzy, Addition) {
  const TriFuzzy x{1, 2, 3};
  const TriFuzzy y{4, 5, 7};
  const TriFuzzy z = x + y;
  EXPECT_DOUBLE_EQ(z.a, 5);
  EXPECT_DOUBLE_EQ(z.b, 7);
  EXPECT_DOUBLE_EQ(z.c, 10);
}

TEST(TriFuzzy, ComponentwiseMax) {
  const TriFuzzy x{1, 5, 6};
  const TriFuzzy y{2, 3, 9};
  const TriFuzzy z = TriFuzzy::fmax(x, y);
  EXPECT_DOUBLE_EQ(z.a, 2);
  EXPECT_DOUBLE_EQ(z.b, 5);
  EXPECT_DOUBLE_EQ(z.c, 9);
}

TEST(TriFuzzy, Membership) {
  const TriFuzzy x{0, 2, 4};
  EXPECT_DOUBLE_EQ(x.membership(0), 0.0);
  EXPECT_DOUBLE_EQ(x.membership(1), 0.5);
  EXPECT_DOUBLE_EQ(x.membership(2), 1.0);
  EXPECT_DOUBLE_EQ(x.membership(3), 0.5);
  EXPECT_DOUBLE_EQ(x.membership(4), 0.0);
  EXPECT_DOUBLE_EQ(x.membership(9), 0.0);
}

TEST(TriFuzzy, AreaAndCrispDegenerate) {
  EXPECT_DOUBLE_EQ((TriFuzzy{0, 2, 4}).area(), 2.0);
  EXPECT_DOUBLE_EQ((TriFuzzy{3, 3, 3}).area(), 0.0);
}

TEST(FuzzyDueDate, SatisfactionRamp) {
  const FuzzyDueDate d{10, 20};
  EXPECT_DOUBLE_EQ(d.satisfaction(5), 1.0);
  EXPECT_DOUBLE_EQ(d.satisfaction(10), 1.0);
  EXPECT_DOUBLE_EQ(d.satisfaction(15), 0.5);
  EXPECT_DOUBLE_EQ(d.satisfaction(20), 0.0);
  EXPECT_DOUBLE_EQ(d.satisfaction(25), 0.0);
}

TEST(AgreementIndex, CertainlyEarlyIsOne) {
  // Completion entirely before d1.
  EXPECT_NEAR(agreement_index(TriFuzzy{1, 2, 3}, FuzzyDueDate{10, 20}), 1.0,
              1e-6);
}

TEST(AgreementIndex, CertainlyLateIsZero) {
  EXPECT_NEAR(agreement_index(TriFuzzy{30, 32, 34}, FuzzyDueDate{10, 20}), 0.0,
              1e-6);
}

TEST(AgreementIndex, PartialOverlapBetween) {
  const double ai =
      agreement_index(TriFuzzy{8, 12, 16}, FuzzyDueDate{10, 20});
  EXPECT_GT(ai, 0.0);
  EXPECT_LT(ai, 1.0);
}

TEST(AgreementIndex, MonotoneInLateness) {
  const FuzzyDueDate due{10, 20};
  const double early = agreement_index(TriFuzzy{8, 10, 12}, due);
  const double later = agreement_index(TriFuzzy{12, 14, 16}, due);
  EXPECT_GT(early, later);
}

TEST(AgreementIndex, CrispCompletionUsesSatisfaction) {
  EXPECT_DOUBLE_EQ(
      agreement_index(TriFuzzy{15, 15, 15}, FuzzyDueDate{10, 20}), 0.5);
}

TEST(FuzzyFlowShop, CompletionKernelMatchesCrispMakespan) {
  // With zero spread the kernel recurrence equals the crisp flow shop.
  const FlowShopInstance crisp = taillard_flow_shop(8, 4, 12345);
  const FuzzyFlowShopInstance fuzzy = fuzzify(crisp.proc, 0.0, 1.5, 0.5);
  std::vector<int> perm(8);
  std::iota(perm.begin(), perm.end(), 0);
  const auto completion = fuzzy_completion_times(fuzzy, perm);
  const auto crisp_completion = flow_shop_completion_times(crisp, perm);
  for (int j = 0; j < 8; ++j) {
    EXPECT_DOUBLE_EQ(completion[static_cast<std::size_t>(j)].b,
                     static_cast<double>(
                         crisp_completion[static_cast<std::size_t>(j)]));
  }
}

TEST(FuzzyFlowShop, SpreadWidensSupport) {
  const FlowShopInstance crisp = taillard_flow_shop(6, 3, 777);
  const FuzzyFlowShopInstance fuzzy = fuzzify(crisp.proc, 0.3, 1.5, 0.5);
  std::vector<int> perm = {0, 1, 2, 3, 4, 5};
  for (const TriFuzzy& c : fuzzy_completion_times(fuzzy, perm)) {
    EXPECT_LT(c.a, c.b);
    EXPECT_LT(c.b, c.c);
  }
}

TEST(FuzzyFlowShop, MeanAgreementInUnitInterval) {
  const FlowShopInstance crisp = taillard_flow_shop(10, 5, 31);
  const FuzzyFlowShopInstance fuzzy = fuzzify(crisp.proc, 0.2, 2.0, 1.0);
  std::vector<int> perm(10);
  std::iota(perm.begin(), perm.end(), 0);
  const double agreement = mean_agreement(fuzzy, perm);
  EXPECT_GE(agreement, 0.0);
  EXPECT_LE(agreement, 1.0);
}

TEST(FuzzyFlowShopProblem, GaObjectiveIsOneMinusAgreement) {
  const FlowShopInstance crisp = taillard_flow_shop(10, 5, 31);
  ga::FuzzyFlowShopProblem problem(fuzzify(crisp.proc, 0.2, 2.0, 1.0));
  par::Rng rng(4);
  const ga::Genome g = problem.random_genome(rng);
  EXPECT_DOUBLE_EQ(problem.objective(g), 1.0 - problem.agreement(g));
  EXPECT_EQ(g.keys.size(), 10u);
}

}  // namespace
}  // namespace psga::sched
