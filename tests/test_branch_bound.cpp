#include "src/sched/branch_bound.h"

#include <gtest/gtest.h>

#include "src/sched/classics.h"
#include "src/sched/generators.h"
#include "src/sched/heuristics.h"

namespace psga::sched {
namespace {

/// 2x2 instance whose optimum (6) is checkable by hand.
JobShopInstance tiny() {
  JobShopInstance inst;
  inst.jobs = 2;
  inst.machines = 2;
  inst.ops = {
      {{0, 3}, {1, 2}},
      {{1, 4}, {0, 1}},
  };
  return inst;
}

TEST(BranchBound, SolvesTinyToOptimality) {
  const BranchBoundResult result = branch_and_bound(tiny());
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_EQ(result.best_makespan, 6);
  // The witness sequence decodes to the claimed makespan.
  const Schedule s = decode_operation_based(tiny(), result.best_sequence);
  EXPECT_EQ(s.makespan(), 6);
  EXPECT_EQ(validate(s, tiny().validation_spec()), std::nullopt);
}

class BnbRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(BnbRandomSweep, OptimumAtMostDispatchAndAtLeastMachineLoad) {
  const int seed = GetParam();
  const JobShopInstance inst =
      random_job_shop(4, 4, static_cast<std::uint64_t>(seed) + 31);
  const BranchBoundResult result = branch_and_bound(inst);
  ASSERT_TRUE(result.proven_optimal);
  EXPECT_LE(result.best_makespan, best_dispatch_makespan(inst));
  // Machine-load lower bound.
  std::vector<Time> load(4, 0);
  for (int j = 0; j < 4; ++j) {
    for (const auto& op : inst.ops[static_cast<std::size_t>(j)]) {
      load[static_cast<std::size_t>(op.machine)] += op.duration;
    }
  }
  EXPECT_GE(result.best_makespan, *std::max_element(load.begin(), load.end()));
  // Witness decodes to the optimum.
  const Schedule s = decode_operation_based(inst, result.best_sequence);
  EXPECT_EQ(s.makespan(), result.best_makespan);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BnbRandomSweep, ::testing::Range(0, 8));

TEST(BranchBound, ParallelMatchesSerial) {
  for (int seed : {1, 2, 3}) {
    const JobShopInstance inst =
        random_job_shop(5, 4, static_cast<std::uint64_t>(seed) * 7 + 2);
    const BranchBoundResult serial = branch_and_bound(inst);
    par::ThreadPool pool(8);
    const BranchBoundResult parallel =
        parallel_branch_and_bound(inst, {}, &pool);
    ASSERT_TRUE(serial.proven_optimal);
    ASSERT_TRUE(parallel.proven_optimal);
    EXPECT_EQ(serial.best_makespan, parallel.best_makespan);
  }
}

TEST(BranchBound, SolvesFt06) {
  // ft06 is small enough for the GT-branching B&B with the simple bounds.
  BranchBoundConfig config;
  config.max_nodes = 20'000'000;
  par::ThreadPool pool(8);
  const BranchBoundResult result =
      parallel_branch_and_bound(ft06().instance, config, &pool);
  EXPECT_EQ(result.best_makespan, ft06().optimum);
  EXPECT_TRUE(result.proven_optimal);
}

TEST(BranchBound, NodeBudgetStopsSearch) {
  BranchBoundConfig config;
  config.max_nodes = 100;
  const BranchBoundResult result =
      branch_and_bound(ft10().instance, config);
  EXPECT_FALSE(result.proven_optimal);
  // Still returns a usable upper bound from the initial incumbent.
  EXPECT_GE(result.best_makespan, ft10().optimum);
}

TEST(BranchBound, InitialUpperBoundIsRespected) {
  // A tight external incumbent (e.g. from a GA, as in AitZai [14]) prunes
  // harder: passing the known optimum + 1 must still find the optimum.
  BranchBoundConfig config;
  config.initial_upper_bound = 56;  // ft06 optimum is 55
  config.max_nodes = 20'000'000;
  par::ThreadPool pool(8);
  const BranchBoundResult result =
      parallel_branch_and_bound(ft06().instance, config, &pool);
  EXPECT_EQ(result.best_makespan, 55);
}

TEST(BranchBound, SingleJobTrivial) {
  JobShopInstance inst;
  inst.jobs = 1;
  inst.machines = 2;
  inst.ops = {{{0, 5}, {1, 7}}};
  const BranchBoundResult result = branch_and_bound(inst);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_EQ(result.best_makespan, 12);
}

}  // namespace
}  // namespace psga::sched
