// The unified Evaluator is the one place fitness evaluation happens, so
// these tests pin down its two contracts:
//   1. backend equivalence — Serial, ThreadPool (any width) and OpenMP
//      produce bit-identical objective vectors for every shop decoder,
//      and the Workspace fast path equals the allocating slow path;
//   2. engine invariance — a full SimpleGa run through the evaluator is
//      identical for every backend and thread count.
#include "src/ga/evaluator.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/ga/problems.h"
#include "src/ga/simple_ga.h"
#include "src/sched/classics.h"
#include "src/sched/generators.h"
#include "src/sched/taillard.h"

namespace psga::ga {
namespace {

std::vector<std::pair<std::string, ProblemPtr>> all_decoder_problems() {
  std::vector<std::pair<std::string, ProblemPtr>> problems;
  problems.emplace_back("flow_shop",
                        std::make_shared<FlowShopProblem>(
                            sched::make_taillard(sched::taillard_20x5().front()),
                            sched::Criterion::kMakespan));
  {
    sched::FlowShopInstance inst =
        sched::make_taillard(sched::taillard_20x5().front());
    sched::assign_due_dates(
        inst.attrs, [&] {
          std::vector<sched::Time> work(static_cast<std::size_t>(inst.jobs));
          for (int j = 0; j < inst.jobs; ++j) work[static_cast<std::size_t>(j)] = inst.total_processing(j);
          return work;
        }(), 1.3, 5, 77);
    problems.emplace_back(
        "flow_shop_twt",
        std::make_shared<FlowShopProblem>(
            std::move(inst), sched::Criterion::kTotalWeightedTardiness));
  }
  problems.emplace_back("random_key_flow_shop",
                        std::make_shared<RandomKeyFlowShopProblem>(
                            sched::make_taillard(sched::taillard_20x5()[1])));
  problems.emplace_back("job_shop_semi_active",
                        std::make_shared<JobShopProblem>(
                            sched::ft06().instance,
                            JobShopProblem::Decoder::kOperationBased));
  problems.emplace_back("job_shop_giffler_thompson",
                        std::make_shared<JobShopProblem>(
                            sched::ft06().instance,
                            JobShopProblem::Decoder::kGifflerThompson));
  problems.emplace_back("open_shop",
                        std::make_shared<OpenShopProblem>(
                            sched::random_open_shop(8, 5, 7)));
  problems.emplace_back("open_shop_lpt_machine",
                        std::make_shared<OpenShopProblem>(
                            sched::random_open_shop(8, 5, 8),
                            sched::OpenShopDecoder::kLptMachine));
  {
    sched::HfsParams params;
    params.jobs = 10;
    params.machines_per_stage = {3, 2, 3};
    params.setup_hi = 10;
    problems.emplace_back("hybrid_flow_shop",
                          std::make_shared<HybridFlowShopProblem>(
                              sched::random_hybrid_flow_shop(params, 9)));
  }
  {
    sched::HfsParams params;
    params.jobs = 8;
    params.blocking = true;
    problems.emplace_back("hybrid_flow_shop_blocking",
                          std::make_shared<HybridFlowShopProblem>(
                              sched::random_hybrid_flow_shop(params, 10)));
  }
  {
    sched::FjsParams params;
    params.jobs = 8;
    params.machines = 5;
    params.ops_per_job = 4;
    params.setup_hi = 10;
    problems.emplace_back("flexible_job_shop",
                          std::make_shared<FlexibleJobShopProblem>(
                              sched::random_flexible_job_shop(params, 11)));
  }
  {
    sched::LotStreamParams params;
    params.jobs = 5;
    params.sublots = 3;
    problems.emplace_back("lot_streaming",
                          std::make_shared<LotStreamingProblem>(
                              sched::random_lot_streaming(params, 13)));
  }
  return problems;
}

std::vector<Genome> random_population(const Problem& problem, int n,
                                      std::uint64_t seed) {
  par::Rng rng(seed);
  std::vector<Genome> population;
  population.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) population.push_back(problem.random_genome(rng));
  return population;
}

TEST(Evaluator, BackendEquivalenceForEveryDecoder) {
  for (const auto& [name, problem] : all_decoder_problems()) {
    SCOPED_TRACE(name);
    const std::vector<Genome> population = random_population(*problem, 32, 5);
    std::vector<double> expected(population.size());
    // Reference: the allocating single-genome path.
    for (std::size_t i = 0; i < population.size(); ++i) {
      expected[i] = problem->objective(population[i]);
    }

    Evaluator serial(problem, EvalBackend::kSerial);
    std::vector<double> got(population.size(), -1.0);
    serial.evaluate(population, got);
    EXPECT_EQ(expected, got) << "serial";

    for (int threads : {1, 2, 5}) {
      par::ThreadPool pool(threads);
      Evaluator pooled(problem, EvalBackend::kThreadPool, &pool);
      std::vector<double> pooled_got(population.size(), -1.0);
      pooled.evaluate(population, pooled_got);
      EXPECT_EQ(expected, pooled_got) << "threads=" << threads;
    }

    Evaluator omp(problem, EvalBackend::kOpenMp);
    std::vector<double> omp_got(population.size(), -1.0);
    omp.evaluate(population, omp_got);
    EXPECT_EQ(expected, omp_got) << "openmp";
  }
}

TEST(Evaluator, WorkspaceCarriesNoStateBetweenBatches) {
  // Re-evaluating the same batch, and evaluating it in reverse order,
  // must give the same numbers — the Workspace only recycles capacity.
  for (const auto& [name, problem] : all_decoder_problems()) {
    SCOPED_TRACE(name);
    std::vector<Genome> population = random_population(*problem, 16, 23);
    Evaluator evaluator(problem, EvalBackend::kSerial);
    std::vector<double> first(population.size());
    evaluator.evaluate(population, first);
    std::vector<double> second(population.size());
    evaluator.evaluate(population, second);
    EXPECT_EQ(first, second);

    std::vector<Genome> reversed(population.rbegin(), population.rend());
    std::vector<double> rev(population.size());
    evaluator.evaluate(reversed, rev);
    const std::vector<double> rev_expected(first.rbegin(), first.rend());
    EXPECT_EQ(rev_expected, rev);
  }
}

TEST(Evaluator, EvaluateOneMatchesBatch) {
  for (const auto& [name, problem] : all_decoder_problems()) {
    SCOPED_TRACE(name);
    const std::vector<Genome> population = random_population(*problem, 8, 31);
    Evaluator evaluator(problem, EvalBackend::kSerial);
    std::vector<double> batch(population.size());
    evaluator.evaluate(population, batch);
    for (std::size_t i = 0; i < population.size(); ++i) {
      EXPECT_EQ(batch[i], evaluator.evaluate_one(population[i])) << i;
    }
  }
}

TEST(Evaluator, CountsEvaluations) {
  const auto problem = std::make_shared<JobShopProblem>(sched::ft06().instance);
  Evaluator evaluator(problem, EvalBackend::kSerial);
  const std::vector<Genome> population = random_population(*problem, 10, 3);
  std::vector<double> out(population.size());
  evaluator.evaluate(population, out);
  evaluator.evaluate(population, out);
  (void)evaluator.evaluate_one(population.front());
  EXPECT_EQ(evaluator.evaluations(), 21);
}

TEST(Evaluator, EngineRunInvariantAcrossBackendsAndThreadCounts) {
  // Full engine runs through the shared evaluation path must be
  // bit-identical for every backend and worker count.
  for (const auto& [name, problem] : all_decoder_problems()) {
    SCOPED_TRACE(name);
    GaConfig cfg;
    cfg.population = 24;
    cfg.termination.max_generations = 8;
    cfg.seed = 17;
    SimpleGa serial(problem, cfg);
    const GaResult reference = serial.run();
    for (int threads : {1, 2, 4}) {
      par::ThreadPool pool(threads);
      GaConfig parallel_cfg = cfg;
      parallel_cfg.eval_backend = EvalBackend::kThreadPool;
      SimpleGa parallel(problem, parallel_cfg, &pool);
      const GaResult result = parallel.run();
      EXPECT_EQ(reference.history, result.history) << "threads=" << threads;
      EXPECT_EQ(reference.best.seq, result.best.seq) << "threads=" << threads;
      EXPECT_EQ(reference.evaluations, result.evaluations);
    }
    GaConfig omp_cfg = cfg;
    omp_cfg.eval_backend = EvalBackend::kOpenMp;
    SimpleGa omp_engine(problem, omp_cfg);
    const GaResult omp_result = omp_engine.run();
    EXPECT_EQ(reference.history, omp_result.history) << "openmp";
  }
}

TEST(Evaluator, LanesMatchBackend) {
  const auto problem = std::make_shared<FlowShopProblem>(
      sched::make_taillard(sched::taillard_20x5().front()));
  Evaluator serial(problem, EvalBackend::kSerial);
  EXPECT_EQ(serial.lanes(), 1);
  par::ThreadPool pool(3);
  Evaluator pooled(problem, EvalBackend::kThreadPool, &pool);
  EXPECT_EQ(pooled.lanes(), 3);
}

}  // namespace
}  // namespace psga::ga
