// The unified Solver facade: spec parsing, the string-keyed engine
// registry, facade-vs-direct trace equality for every engine, observer
// hooks, and the universal StopCondition (wall-clock / evaluation
// budgets for all engines).
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "src/ga/problems.h"
#include "src/ga/registry.h"
#include "src/ga/solver.h"
#include "src/sched/classics.h"
#include "src/sched/taillard.h"

namespace psga::ga {
namespace {

ProblemPtr flow_shop() {
  return std::make_shared<FlowShopProblem>(
      sched::make_taillard(sched::taillard_20x5().front()));
}

ProblemPtr job_shop() {
  return std::make_shared<JobShopProblem>(sched::ft06().instance);
}

// --- facade vs direct construction: identical traces ------------------------

TEST(SolverFacade, SimpleMatchesDirectConstruction) {
  const StopCondition stop = StopCondition::generations(15);
  GaConfig cfg;
  cfg.population = 30;
  cfg.seed = 5;
  SimpleGa direct(flow_shop(), cfg);
  const RunResult expect = direct.run(stop);
  const RunResult got =
      Solver::build(SolverSpec::parse("engine=simple pop=30 seed=5"),
                    flow_shop())
          .run(stop);
  EXPECT_EQ(expect.history, got.history);
  EXPECT_EQ(expect.best.seq, got.best.seq);
  EXPECT_EQ(expect.evaluations, got.evaluations);
}

TEST(SolverFacade, MasterSlaveMatchesDirectConstruction) {
  const StopCondition stop = StopCondition::generations(12);
  GaConfig cfg;
  cfg.population = 24;
  cfg.seed = 3;
  MasterSlaveGa direct(flow_shop(), cfg);
  const RunResult expect = direct.run(stop);
  const RunResult got =
      Solver::build(SolverSpec::parse("engine=master-slave pop=24 seed=3"),
                    flow_shop())
          .run(stop);
  EXPECT_EQ(expect.history, got.history);
  EXPECT_EQ(expect.best.seq, got.best.seq);
}

TEST(SolverFacade, CellularMatchesDirectConstruction) {
  const StopCondition stop = StopCondition::generations(8);
  CellularConfig cfg;
  cfg.width = 6;
  cfg.height = 6;
  cfg.seed = 7;
  CellularGa direct(flow_shop(), cfg);
  const RunResult expect = direct.run(stop);
  const RunResult got =
      Solver::build(SolverSpec::parse("engine=cellular width=6 height=6 seed=7"),
                    flow_shop())
          .run(stop);
  EXPECT_EQ(expect.history, got.history);
  EXPECT_EQ(expect.best.seq, got.best.seq);
}

TEST(SolverFacade, IslandMatchesDirectConstruction) {
  const StopCondition stop = StopCondition::generations(10);
  IslandGaConfig cfg;
  cfg.islands = 3;
  cfg.base.population = 16;
  cfg.base.seed = 9;
  cfg.migration.interval = 4;
  IslandGa direct(flow_shop(), cfg);
  const RunResult expect = direct.run(stop);
  const RunResult got =
      Solver::build(
          SolverSpec::parse("engine=island islands=3 pop=16 seed=9 interval=4"),
          flow_shop())
          .run(stop);
  EXPECT_EQ(expect.history, got.history);
  EXPECT_EQ(expect.best.seq, got.best.seq);
  ASSERT_TRUE(got.islands.has_value());
  EXPECT_EQ(expect.islands->best, got.islands->best);
}

TEST(SolverFacade, IslandsOfCellularMatchesDirectConstruction) {
  const StopCondition stop = StopCondition::generations(6);
  IslandsOfCellularConfig cfg;
  cfg.islands = 2;
  cfg.cell.width = 4;
  cfg.cell.height = 4;
  cfg.seed = 11;
  cfg.migration_interval = 3;
  IslandsOfCellularGa direct(job_shop(), cfg);
  const RunResult expect = direct.run(stop);
  const RunResult got =
      Solver::build(SolverSpec::parse("engine=islands-of-cellular islands=2 "
                                      "width=4 height=4 seed=11 interval=3"),
                    job_shop())
          .run(stop);
  EXPECT_EQ(expect.history, got.history);
  EXPECT_EQ(expect.best.seq, got.best.seq);
}

TEST(SolverFacade, QuantumMatchesDirectConstruction) {
  const StopCondition stop = StopCondition::generations(10);
  QuantumGaConfig cfg;
  cfg.islands = 2;
  cfg.population = 8;
  cfg.seed = 13;
  QuantumGa direct(job_shop(), cfg);
  const RunResult expect = direct.run(stop);
  const RunResult got =
      Solver::build(SolverSpec::parse("engine=quantum islands=2 pop=8 seed=13"),
                    job_shop())
          .run(stop);
  EXPECT_EQ(expect.history, got.history);
  EXPECT_EQ(expect.best.seq, got.best.seq);
  ASSERT_TRUE(got.quantum.has_value());
  EXPECT_GT(got.quantum->final_noise, 0.0);
}

TEST(SolverFacade, MemeticMatchesDirectConstruction) {
  const StopCondition stop = StopCondition::generations(9);
  MemeticConfig cfg;
  cfg.base.population = 20;
  cfg.base.seed = 15;
  cfg.interval = 3;
  cfg.refine_count = 2;
  cfg.search_budget = 40;
  MemeticGa direct(flow_shop(), cfg);
  const RunResult expect = direct.run(stop);
  const RunResult got =
      Solver::build(SolverSpec::parse("engine=memetic pop=20 seed=15 "
                                      "interval=3 refine=2 budget=40"),
                    flow_shop())
          .run(stop);
  EXPECT_EQ(expect.history, got.history);
  EXPECT_EQ(expect.best.seq, got.best.seq);
  EXPECT_EQ(expect.evaluations, got.evaluations);
}

TEST(SolverFacade, ClusterMatchesDirectConstruction) {
  const StopCondition stop = StopCondition::generations(8);
  ClusterIslandConfig cfg;
  cfg.ranks = 2;
  cfg.base.population = 12;
  cfg.base.seed = 17;
  cfg.neighbor_interval = 3;
  cfg.broadcast_interval = 0;
  ClusterIslandGa direct(flow_shop(), cfg);
  const RunResult expect = direct.run(stop);
  const RunResult got =
      Solver::build(SolverSpec::parse("engine=cluster ranks=2 pop=12 seed=17 "
                                      "interval=3 broadcast=0"),
                    flow_shop())
          .run(stop);
  EXPECT_DOUBLE_EQ(expect.best_objective, got.best_objective);
  ASSERT_TRUE(got.islands.has_value());
  EXPECT_EQ(expect.islands->best, got.islands->best);
}

// --- registry round-trips ----------------------------------------------------

TEST(SolverSpecRegistry, EveryEngineTimesEveryCrossoverRoundTrips) {
  // Small instance so the full engine x operator product stays fast.
  auto problem = std::make_shared<FlowShopProblem>(
      sched::taillard_flow_shop(8, 3, 1234));
  const StopCondition one_gen = StopCondition::generations(1);
  for (const std::string& engine : engine_names()) {
    for (const std::string& xover : crossover_names(SeqKind::kPermutation)) {
      const std::string text = "engine=" + engine + " xover=" + xover +
                               " pop=8 islands=2 ranks=2 width=3 height=3";
      SCOPED_TRACE(text);
      const SolverSpec spec = SolverSpec::parse(text);
      EXPECT_EQ(spec.engine, engine);
      ASSERT_TRUE(spec.crossover.has_value());
      EXPECT_EQ(*spec.crossover, xover);
      const RunResult r = Solver::build(spec, problem).run(one_gen);
      EXPECT_GT(r.best_objective, 0.0);
    }
  }
}

TEST(SolverSpecRegistry, EveryEngineTimesEveryMutationAndSelectionRoundTrips) {
  auto problem = std::make_shared<FlowShopProblem>(
      sched::taillard_flow_shop(8, 3, 99));
  const StopCondition one_gen = StopCondition::generations(1);
  const std::vector<std::string> selections = {"roulette", "sus", "tournament3",
                                               "rank", "elitist-roulette"};
  for (const std::string& engine : engine_names()) {
    for (const std::string& mut : sequence_mutation_names()) {
      const std::string text = "engine=" + engine + " mut=" + mut +
                               " pop=8 islands=2 ranks=2 width=3 height=3";
      SCOPED_TRACE(text);
      const RunResult r =
          Solver::build(SolverSpec::parse(text), problem).run(one_gen);
      EXPECT_GT(r.best_objective, 0.0);
    }
    for (const std::string& sel : selections) {
      const std::string text = "engine=" + engine + " sel=" + sel +
                               " pop=8 islands=2 ranks=2 width=3 height=3";
      SCOPED_TRACE(text);
      const RunResult r =
          Solver::build(SolverSpec::parse(text), problem).run(one_gen);
      EXPECT_GT(r.best_objective, 0.0);
    }
  }
}

TEST(SolverSpecRegistry, RegisteredEngineNamesAreComplete) {
  const std::vector<std::string> names = engine_names();
  for (const char* expected :
       {"simple", "master-slave", "cellular", "island", "islands-of-cellular",
        "quantum", "memetic", "cluster"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(SolverSpecRegistry, CustomEngineRegistration) {
  register_engine("custom-simple",
                  [](ProblemPtr problem, const SolverSpec&, par::ThreadPool*) {
                    GaConfig cfg;
                    cfg.population = 10;
                    return make_engine(std::move(problem), cfg);
                  });
  const RunResult r =
      Solver::build(SolverSpec::parse("engine=custom-simple"), flow_shop())
          .run(StopCondition::generations(2));
  EXPECT_GT(r.best_objective, 0.0);
}

// --- spec round-trips: property/fuzz style -----------------------------------

TEST(SolverSpecRoundTrip, CanonicalStringReparsesToTheSameSpec) {
  for (const char* text :
       {"engine=simple", "engine=simple pop=100 seed=7 xover=ox mut=swap",
        "engine=master-slave pop=200 eval=omp",
        "engine=cellular width=16 height=16 neighborhood=moore radius=2",
        "engine=island islands=8 topology=hypercube policy=best-random "
        "interval=5 eval=async_pool eval_cache=lru:65536",
        "engine=island eval_backend=async_pool eval_cache=lru:65536",
        "engine=quantum islands=4 pop=20 eval=async_pool",
        "engine=cluster ranks=6 interval=5 broadcast=25 eval_cache=unbounded",
        "engine=memetic pop=60 interval=5 refine=2 budget=150 "
        "eval_cache=off xover-rate=0.85 mut-rate=0.15"}) {
    SCOPED_TRACE(text);
    const SolverSpec spec = SolverSpec::parse(text);
    EXPECT_EQ(SolverSpec::parse(spec.to_string()), spec);
  }
}

TEST(SolverSpecRoundTrip, RandomSpecsSurviveParsePrintParse) {
  // Property-style sweep: random subsets of the whole token grammar,
  // random values, 200 draws — spec -> to_string -> parse must be the
  // identity, including the async/cache tokens.
  par::Rng rng(4242);
  const std::vector<std::string> engines = engine_names();
  const char* evals[] = {"serial", "pool", "omp", "async_pool"};
  const char* caches[] = {"off", "unbounded", "lru:16", "lru:65536"};
  const char* topologies[] = {"ring", "grid",  "torus",     "full",
                              "star", "hypercube", "random"};
  const char* policies[] = {"best-worst", "best-random", "random-random"};
  const char* sels[] = {"roulette", "sus", "tournament3", "rank"};
  for (int draw = 0; draw < 200; ++draw) {
    std::string text = "engine=" + engines[rng.below(engines.size())];
    if (rng.chance(0.5)) text += " pop=" + std::to_string(rng.range(2, 500));
    if (rng.chance(0.5)) text += " elites=" + std::to_string(rng.range(0, 8));
    if (rng.chance(0.5)) text += " seed=" + std::to_string(rng() >> 1);
    if (rng.chance(0.5)) text += std::string(" eval=") + evals[rng.below(4)];
    if (rng.chance(0.5)) {
      text += std::string(" eval_cache=") + caches[rng.below(4)];
    }
    if (rng.chance(0.3)) text += std::string(" sel=") + sels[rng.below(4)];
    if (rng.chance(0.3)) {
      text += " xover-rate=" + std::to_string(rng.uniform());
      text += " mut-rate=" + std::to_string(rng.uniform());
    }
    if (rng.chance(0.3)) {
      text += " islands=" + std::to_string(rng.range(2, 16));
      text += std::string(" topology=") + topologies[rng.below(7)];
      text += std::string(" policy=") + policies[rng.below(3)];
      text += " interval=" + std::to_string(rng.range(1, 20));
    }
    if (rng.chance(0.3)) {
      text += " width=" + std::to_string(rng.range(2, 16));
      text += " height=" + std::to_string(rng.range(2, 16));
      text += rng.chance(0.5) ? " neighborhood=moore" : " neighborhood=von-neumann";
    }
    if (rng.chance(0.3)) text += " ranks=" + std::to_string(rng.range(2, 8));
    SCOPED_TRACE(text);
    const SolverSpec once = SolverSpec::parse(text);
    const SolverSpec twice = SolverSpec::parse(once.to_string());
    EXPECT_EQ(once, twice);
    EXPECT_EQ(once.to_string(), twice.to_string());
  }
}

TEST(SolverSpecRoundTrip, SpecToSolverToSpecIsTheIdentity) {
  // The full loop the satellite asks for: spec -> Solver -> spec.
  for (const char* text :
       {"engine=simple pop=12 seed=3 eval=async_pool eval_cache=lru:512",
        "engine=island islands=2 pop=8 interval=2 eval_cache=unbounded",
        "engine=cellular width=4 height=3 eval=serial"}) {
    SCOPED_TRACE(text);
    const SolverSpec spec = SolverSpec::parse(text);
    Solver solver = Solver::build(spec, flow_shop());
    EXPECT_EQ(solver.spec(), spec);
    EXPECT_EQ(SolverSpec::parse(solver.spec().to_string()), spec);
  }
}

TEST(SolverSpecRoundTrip, MalformedTokenFuzzAlwaysThrows) {
  // Deterministic fuzz over broken shapes: every draw must throw
  // std::invalid_argument and never crash or silently parse.
  par::Rng rng(777);
  const std::string valid = "engine=simple pop=20 eval_cache=lru:64";
  for (int draw = 0; draw < 200; ++draw) {
    std::string text = valid;
    switch (rng.below(6)) {
      case 0:  // junk key
        text += " zz" + std::to_string(rng.below(100)) + "=1";
        break;
      case 1:  // missing '='
        text += " population";
        break;
      case 2:  // empty value
        text += " pop=";
        break;
      case 3:  // empty key
        text += " =5";
        break;
      case 4:  // malformed numbers / enums
        text += rng.chance(0.5) ? " pop=12x" : " eval=gpu";
        break;
      case 5:  // malformed cache tokens
        text += rng.chance(0.5) ? " eval_cache=lru:" : " eval_cache=lru:0";
        break;
    }
    SCOPED_TRACE(text);
    EXPECT_THROW(SolverSpec::parse(text), std::invalid_argument);
  }
}

TEST(SolverSpecRoundTrip, ProgrammaticEvalCacheConfigsSurviveToString) {
  // A spec built in code (not parsed) must round-trip too — including a
  // non-default shard count, which rides as lru:<capacity>:<shards>.
  SolverSpec spec;
  spec.engine = "island";
  spec.eval_cache = EvalCacheConfig{EvalCacheMode::kLru, 1024, 16};
  EXPECT_EQ(SolverSpec::parse(spec.to_string()), spec);
  spec.eval_cache = EvalCacheConfig{EvalCacheMode::kUnbounded, 0, 3};
  EXPECT_EQ(SolverSpec::parse(spec.to_string()), spec);
  const SolverSpec sharded =
      SolverSpec::parse("engine=simple eval_cache=lru:1024:16");
  EXPECT_EQ(sharded.eval_cache->shards, 16);
  EXPECT_EQ(sharded.eval_cache->capacity, 1024u);
  EXPECT_THROW(SolverSpec::parse("engine=simple eval_cache=lru:1024:0"),
               std::invalid_argument);
  EXPECT_THROW(SolverSpec::parse("engine=simple eval_cache=unbounded:x"),
               std::invalid_argument);
}

TEST(SolverSpec, EvalCacheAndAsyncTokensParse) {
  const SolverSpec spec = SolverSpec::parse(
      "engine=island eval_backend=async_pool eval_cache=lru:65536");
  ASSERT_TRUE(spec.eval.has_value());
  EXPECT_EQ(*spec.eval, EvalBackend::kAsyncPool);
  ASSERT_TRUE(spec.eval_cache.has_value());
  EXPECT_EQ(spec.eval_cache->mode, EvalCacheMode::kLru);
  EXPECT_EQ(spec.eval_cache->capacity, 65536u);
  EXPECT_EQ(*SolverSpec::parse("engine=simple eval=async").eval,
            EvalBackend::kAsyncPool);
  EXPECT_EQ(SolverSpec::parse("engine=simple eval_cache=off").eval_cache->mode,
            EvalCacheMode::kOff);
  EXPECT_EQ(
      SolverSpec::parse("engine=simple eval_cache=unbounded").eval_cache->mode,
      EvalCacheMode::kUnbounded);
}

// --- error reporting ---------------------------------------------------------

TEST(SolverSpec, UnknownKeyThrowsWithOffendingToken) {
  try {
    SolverSpec::parse("engine=simple bogus-key=3");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("bogus-key=3"), std::string::npos)
        << e.what();
  }
}

TEST(SolverSpec, MalformedTokenThrowsWithOffendingToken) {
  try {
    SolverSpec::parse("engine=simple pop");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("pop"), std::string::npos);
  }
  try {
    SolverSpec::parse("pop=abc");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("pop=abc"), std::string::npos);
  }
  EXPECT_THROW(SolverSpec::parse("topology=moebius"), std::invalid_argument);
  EXPECT_THROW(SolverSpec::parse("eval=gpu"), std::invalid_argument);
}

TEST(Solver, UnknownEngineThrowsListingRegistered) {
  try {
    Solver::build(SolverSpec::parse("engine=annealing"), flow_shop());
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("annealing"), std::string::npos);
    EXPECT_NE(what.find("island"), std::string::npos);
  }
}

// --- observer hooks ----------------------------------------------------------

class CountingObserver : public RunObserver {
 public:
  bool on_generation(const Engine&, const GenerationEvent& event) override {
    ++generations_seen;
    last_generation = event.generation;
    return stop_after < 0 || event.generation < stop_after;
  }
  void on_improvement(const Engine&, const GenerationEvent& event) override {
    improvements.push_back(event.best_objective);
  }
  void on_migration(const MigrationEvent& event) override {
    ++migrations;
    last_migration_to = event.to;
  }

  int generations_seen = 0;
  int last_generation = 0;
  int stop_after = -1;
  int migrations = 0;
  int last_migration_to = -1;
  std::vector<double> improvements;
};

TEST(RunObserverHooks, GenerationAndImprovementEvents) {
  CountingObserver observer;
  Solver solver =
      Solver::build(SolverSpec::parse("engine=simple pop=20 seed=21"),
                    flow_shop());
  solver.set_observer(&observer);
  const RunResult r = solver.run(StopCondition::generations(10));
  // Gen 0 (after init) plus one event per step.
  EXPECT_EQ(observer.generations_seen, 11);
  EXPECT_EQ(observer.last_generation, r.generations);
  // The initial best always counts as an improvement; improvements must
  // be strictly decreasing.
  ASSERT_FALSE(observer.improvements.empty());
  EXPECT_DOUBLE_EQ(observer.improvements.front(), r.history.front());
  for (std::size_t i = 1; i < observer.improvements.size(); ++i) {
    EXPECT_LT(observer.improvements[i], observer.improvements[i - 1]);
  }
}

TEST(RunObserverHooks, ReturningFalseStopsTheRunEarly) {
  CountingObserver observer;
  observer.stop_after = 3;
  Solver solver =
      Solver::build(SolverSpec::parse("engine=simple pop=20 seed=23"),
                    flow_shop());
  solver.set_observer(&observer);
  const RunResult r = solver.run(StopCondition::generations(100));
  EXPECT_EQ(r.generations, 3);
}

TEST(RunObserverHooks, MigrationEventsFromIslandEngine) {
  CountingObserver observer;
  Solver solver = Solver::build(
      SolverSpec::parse("engine=island islands=3 pop=10 seed=25 interval=1"),
      flow_shop());
  solver.set_observer(&observer);
  solver.run(StopCondition::generations(6));
  EXPECT_GT(observer.migrations, 0);
  EXPECT_GE(observer.last_migration_to, 0);
  EXPECT_LT(observer.last_migration_to, 3);
}

// --- universal stop conditions ----------------------------------------------

class BudgetSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(BudgetSweep, EveryEngineRespectsFiftyMsWallClock) {
  // Small problem, huge generation cap: only the wall-clock budget can
  // end the run. Generous upper bound: the budget check runs between
  // generations, so a run may overshoot by a few generation times.
  auto problem = std::make_shared<FlowShopProblem>(
      sched::taillard_flow_shop(10, 4, 777));
  Solver solver = Solver::build(SolverSpec::parse(GetParam()), problem);
  const RunResult r = solver.run(StopCondition::time_budget(0.05));
  EXPECT_GE(r.seconds, 0.05);
  EXPECT_LT(r.seconds, 1.0) << "engine ran far past its 50 ms budget";
  EXPECT_GT(r.generations, 0);
  EXPECT_GT(r.evaluations, 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, BudgetSweep,
    ::testing::Values("engine=simple pop=16",
                      "engine=master-slave pop=16",
                      "engine=cellular width=4 height=4",
                      "engine=island islands=2 pop=8 interval=2",
                      "engine=islands-of-cellular islands=2 width=3 height=3",
                      "engine=quantum islands=2 pop=8",
                      "engine=memetic pop=16 interval=2 budget=20",
                      "engine=cluster ranks=2 pop=8 interval=2 broadcast=4"));

TEST(StopConditions, EvaluationBudgetStopsTheRun) {
  const RunResult r =
      Solver::build(SolverSpec::parse("engine=simple pop=20 seed=31"),
                    flow_shop())
          .run(StopCondition::evaluation_budget(100));
  EXPECT_GE(r.evaluations, 100);
  EXPECT_LE(r.evaluations, 120);  // overshoot bounded by one generation
}

TEST(StopConditions, TargetObjectiveStopsTheRun) {
  // A target below any reachable makespan: runs to the generation cap.
  const RunResult unreachable =
      Solver::build(SolverSpec::parse("engine=simple pop=16 seed=33"),
                    flow_shop())
          .run(StopCondition::target(1.0, 5));
  EXPECT_EQ(unreachable.generations, 5);
  // A trivially satisfied target: stops immediately after init.
  const RunResult trivial =
      Solver::build(SolverSpec::parse("engine=simple pop=16 seed=33"),
                    flow_shop())
          .run(StopCondition::target(1e9, 5));
  EXPECT_EQ(trivial.generations, 0);
}

}  // namespace
}  // namespace psga::ga
