#include "src/ga/island_ga.h"

#include <gtest/gtest.h>

#include "src/ga/problems.h"
#include "src/ga/registry.h"
#include "src/sched/classics.h"
#include "src/sched/objectives.h"
#include "src/sched/taillard.h"

namespace psga::ga {
namespace {

ProblemPtr problem() {
  return std::make_shared<FlowShopProblem>(
      sched::make_taillard(sched::taillard_20x5().front()));
}

IslandGaConfig config(std::uint64_t seed = 1) {
  IslandGaConfig cfg;
  cfg.islands = 4;
  cfg.base.population = 24;
  cfg.base.termination.max_generations = 30;
  cfg.base.seed = seed;
  cfg.migration.interval = 5;
  return cfg;
}

TEST(IslandGa, ImprovesAndMonotone) {
  IslandGa ga(problem(), config());
  const RunResult result = ga.run();
  EXPECT_LT(result.best_objective, result.history.front());
  for (std::size_t i = 1; i < result.history.size(); ++i) {
    EXPECT_LE(result.history[i], result.history[i - 1]);
  }
}

TEST(IslandGa, DeterministicForSeedAcrossThreadCounts) {
  std::vector<double> reference;
  {
    par::ThreadPool pool(1);
    IslandGa ga(problem(), config(9), &pool);
    reference = ga.run().history;
  }
  for (int threads : {2, 8}) {
    par::ThreadPool pool(threads);
    IslandGa ga(problem(), config(9), &pool);
    EXPECT_EQ(ga.run().history, reference) << threads;
  }
}

TEST(IslandGa, GlobalBestIsMinOfIslandBests) {
  IslandGa ga(problem(), config(3));
  const RunResult result = ga.run();
  double min_island = result.islands->best.front();
  for (double b : result.islands->best) min_island = std::min(min_island, b);
  EXPECT_DOUBLE_EQ(result.best_objective, min_island);
}

class TopologySweep : public ::testing::TestWithParam<Topology> {};

TEST_P(TopologySweep, RunsAndImproves) {
  IslandGaConfig cfg = config(5);
  cfg.islands = 6;
  cfg.migration.topology = GetParam();
  IslandGa ga(problem(), cfg);
  const RunResult result = ga.run();
  EXPECT_LT(result.best_objective, result.history.front());
  EXPECT_EQ(result.islands->surviving, 6);
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, TopologySweep,
    ::testing::Values(Topology::kRing, Topology::kGrid, Topology::kTorus,
                      Topology::kFullyConnected, Topology::kStar,
                      Topology::kHypercube, Topology::kRandom));

class PolicySweep : public ::testing::TestWithParam<MigrationPolicy> {};

TEST_P(PolicySweep, RunsAndImproves) {
  IslandGaConfig cfg = config(6);
  cfg.migration.policy = GetParam();
  IslandGa ga(problem(), cfg);
  const RunResult result = ga.run();
  EXPECT_LT(result.best_objective, result.history.front());
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicySweep,
                         ::testing::Values(
                             MigrationPolicy::kBestReplaceWorst,
                             MigrationPolicy::kBestReplaceRandom,
                             MigrationPolicy::kRandomReplaceRandom));

TEST(IslandGa, MigrationSpreadsBestIndividual) {
  // With migration every generation and best-replace-worst on a fully
  // connected topology, all islands should quickly share the global best;
  // without migration island bests stay more spread. Compare the spread.
  IslandGaConfig with = config(7);
  with.migration.interval = 1;
  with.migration.topology = Topology::kFullyConnected;
  IslandGaConfig without = config(7);
  without.migration.interval = 0;

  const RunResult rw = IslandGa(problem(), with).run();
  const RunResult ro = IslandGa(problem(), without).run();
  auto spread = [](const std::vector<double>& xs) {
    return *std::max_element(xs.begin(), xs.end()) -
           *std::min_element(xs.begin(), xs.end());
  };
  EXPECT_LE(spread(rw.islands->best), spread(ro.islands->best));
}

TEST(IslandGa, IdenticalStartMakesIslandsEqualWithoutMigration) {
  IslandGaConfig cfg = config(8);
  cfg.identical_start = true;
  cfg.migration.interval = 0;
  cfg.per_island_ops.clear();
  IslandGa ga(problem(), cfg);
  const RunResult result = ga.run();
  // Same seed, same operators, no interaction: all islands identical.
  for (double b : result.islands->best) {
    EXPECT_DOUBLE_EQ(b, result.islands->best.front());
  }
}

TEST(IslandGa, HeterogeneousOperatorsPerIsland) {
  IslandGaConfig cfg = config(10);
  for (const char* cx : {"ox", "pmx", "two-point", "cycle"}) {
    OperatorConfig ops;
    ops.selection = make_selection("tournament2");
    ops.crossover = make_crossover(cx);
    ops.mutation = make_mutation("swap");
    cfg.per_island_ops.push_back(ops);
  }
  IslandGa ga(problem(), cfg);
  const RunResult result = ga.run();
  EXPECT_LT(result.best_objective, result.history.front());
}

TEST(IslandGa, PerIslandProblemsForWeightedObjectives) {
  // Rashidi-style: each island minimizes a differently weighted
  // combination of makespan and max tardiness.
  sched::HybridFlowShopInstance inst;
  inst.jobs = 6;
  inst.machines_per_stage = {2, 2};
  inst.proc.assign(2, std::vector<std::vector<sched::Time>>(
                          6, std::vector<sched::Time>(2, 5)));
  for (int s = 0; s < 2; ++s) {
    for (int j = 0; j < 6; ++j) {
      for (int k = 0; k < 2; ++k) {
        inst.proc[static_cast<std::size_t>(s)][static_cast<std::size_t>(j)]
                 [static_cast<std::size_t>(k)] = 3 + (j * 7 + s * 3 + k) % 9;
      }
    }
  }
  inst.attrs.due.assign(6, 15);

  IslandGaConfig cfg;
  cfg.islands = 4;
  cfg.base.population = 16;
  cfg.base.termination.max_generations = 15;
  for (int i = 0; i < 4; ++i) {
    const double w = 0.2 + 0.2 * i;
    sched::CompositeObjective obj;
    obj.terms = {{sched::Criterion::kMakespan, w},
                 {sched::Criterion::kMaxTardiness, 1.0 - w}};
    cfg.per_island_problems.push_back(
        std::make_shared<HybridFlowShopProblem>(inst, obj));
  }
  IslandGa ga(cfg.per_island_problems.front(), cfg);
  const RunResult result = ga.run();
  EXPECT_EQ(result.islands->best.size(), 4u);
  for (double b : result.islands->best) EXPECT_GT(b, 0.0);
}

TEST(IslandGa, MergingReducesIslandCount) {
  IslandGaConfig cfg = config(12);
  cfg.islands = 6;
  cfg.base.population = 10;
  cfg.base.termination.max_generations = 80;
  cfg.merge.enabled = true;
  cfg.merge.hamming_threshold = 25;  // generous: triggers merging fast
  cfg.merge.fraction = 0.4;
  IslandGa ga(problem(), cfg);
  const RunResult result = ga.run();
  EXPECT_LT(result.islands->surviving, 6);
  EXPECT_GE(result.islands->surviving, 1);
}

TEST(IslandGa, DelayedMigrationIsDeterministicAndDistinct) {
  // delay_epochs models asynchronous staleness; it must stay reproducible
  // and produce a different trajectory than synchronous delivery.
  IslandGaConfig sync = config(15);
  sync.migration.interval = 3;
  IslandGaConfig delayed = sync;
  delayed.migration.delay_epochs = 2;

  IslandGa a1(problem(), delayed);
  IslandGa a2(problem(), delayed);
  const auto r1 = a1.run();
  const auto r2 = a2.run();
  EXPECT_EQ(r1.history, r2.history);

  IslandGa b(problem(), sync);
  EXPECT_NE(b.run().history, r1.history);
}

TEST(IslandGa, DelayedMigrationStillImproves) {
  IslandGaConfig cfg = config(16);
  cfg.migration.interval = 2;
  cfg.migration.delay_epochs = 1;
  IslandGa ga(problem(), cfg);
  const RunResult result = ga.run();
  EXPECT_LT(result.best_objective, result.history.front());
}

TEST(IslandGa, SingleIslandDegeneratesToSimpleGa) {
  IslandGaConfig cfg = config(13);
  cfg.islands = 1;
  IslandGa ga(problem(), cfg);
  const RunResult result = ga.run();
  EXPECT_EQ(result.islands->best.size(), 1u);
  EXPECT_DOUBLE_EQ(result.best_objective, result.islands->best[0]);
}

}  // namespace
}  // namespace psga::ga
