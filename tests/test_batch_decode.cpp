// The batch decode kernels (sched/batch_decode.h) and the eval_batch
// chunking policy must be invisible in every objective: for any batch
// size and any backend, the batched path returns exactly what the scalar
// decoders return. These tests pin that contract at three levels —
// the raw kernels against their scalar twins, the Evaluator's chunked
// objective_batch across every registered problem × batch size ×
// backend, and whole engine traces across eval_batch= values — plus the
// early-exit semantics of the job-shop kernel and the eval_batch spec
// token round-trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/ga/problem_spec.h"
#include "src/ga/problems.h"
#include "src/ga/solver.h"
#include "src/sched/batch_decode.h"
#include "src/sched/classics.h"
#include "src/sched/taillard.h"

namespace psga::ga {
namespace {

using sched::Criterion;
using sched::Time;

sched::FlowShopInstance taillard_instance() {
  return sched::make_taillard(sched::taillard_20x5().front());
}

std::vector<std::vector<int>> random_permutations(int count, int jobs,
                                                  std::uint64_t seed) {
  par::Rng rng(seed);
  std::vector<std::vector<int>> perms(static_cast<std::size_t>(count));
  for (auto& perm : perms) {
    perm.resize(static_cast<std::size_t>(jobs));
    for (int j = 0; j < jobs; ++j) perm[static_cast<std::size_t>(j)] = j;
    for (std::size_t i = perm.size(); i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.below(i)]);
    }
  }
  return perms;
}

std::vector<std::span<const int>> as_lanes(
    const std::vector<std::vector<int>>& perms) {
  std::vector<std::span<const int>> lanes;
  lanes.reserve(perms.size());
  for (const auto& p : perms) lanes.emplace_back(p);
  return lanes;
}

// --- flow-shop kernel vs scalar ----------------------------------------------

TEST(FlowShopBatchKernel, MakespanBitIdenticalToScalarForEveryBatchSize) {
  const sched::FlowShopInstance inst = taillard_instance();
  sched::FlowShopScratch scalar;
  sched::FlowShopBatchScratch batch;
  for (int size : {1, 2, 7, 16, 33}) {
    SCOPED_TRACE(size);
    const auto perms = random_permutations(size, inst.jobs, 11 + size);
    const auto lanes = as_lanes(perms);
    std::vector<Time> got(lanes.size(), -1);
    sched::flow_shop_makespan_batch(inst, lanes, got, batch);
    for (std::size_t l = 0; l < lanes.size(); ++l) {
      EXPECT_EQ(got[l], sched::flow_shop_makespan(inst, lanes[l], scalar))
          << "lane " << l;
    }
  }
}

TEST(FlowShopBatchKernel, ObjectiveMatchesScalarForEveryCriterion) {
  sched::FlowShopInstance inst = taillard_instance();
  // Engage the due-date/weight paths too.
  inst.attrs.due.assign(static_cast<std::size_t>(inst.jobs), 0);
  inst.attrs.weight.assign(static_cast<std::size_t>(inst.jobs), 1.0);
  for (int j = 0; j < inst.jobs; ++j) {
    inst.attrs.due[static_cast<std::size_t>(j)] = 40 * (j + 1);
    inst.attrs.weight[static_cast<std::size_t>(j)] = 1.0 + 0.25 * (j % 4);
  }
  const auto perms = random_permutations(9, inst.jobs, 23);
  const auto lanes = as_lanes(perms);
  sched::FlowShopScratch scalar;
  sched::FlowShopBatchScratch batch;
  for (Criterion c :
       {Criterion::kMakespan, Criterion::kTotalWeightedCompletion,
        Criterion::kTotalWeightedTardiness, Criterion::kWeightedUnitPenalty,
        Criterion::kMaxTardiness}) {
    SCOPED_TRACE(sched::to_string(c));
    std::vector<double> got(lanes.size(), -1.0);
    sched::flow_shop_objective_batch(inst, lanes, c, got, batch);
    for (std::size_t l = 0; l < lanes.size(); ++l) {
      EXPECT_EQ(got[l], sched::flow_shop_objective(inst, lanes[l], c, scalar))
          << "lane " << l;
    }
  }
}

TEST(FlowShopBatchKernel, ScratchRepacksWhenTheInstanceChanges) {
  const sched::FlowShopInstance a = taillard_instance();
  sched::FlowShopInstance b_mut = a;
  b_mut.proc[0][0] += 17;  // distinct data at a distinct address
  const sched::FlowShopInstance& b = b_mut;
  const auto perms = random_permutations(5, a.jobs, 31);
  const auto lanes = as_lanes(perms);
  sched::FlowShopScratch scalar;
  sched::FlowShopBatchScratch batch;
  std::vector<Time> got(lanes.size());
  // Same scratch, alternating instances: the pack must follow the
  // instance, not stick to whichever was seen first.
  for (const sched::FlowShopInstance* inst : {&a, &b, &a}) {
    sched::flow_shop_makespan_batch(*inst, lanes, got, batch);
    for (std::size_t l = 0; l < lanes.size(); ++l) {
      EXPECT_EQ(got[l], sched::flow_shop_makespan(*inst, lanes[l], scalar));
    }
  }
}

TEST(FlowShopBatchKernel, WideInstancesFallBackToExactInt64Lanes) {
  // Durations large enough that completion times overflow int32: the
  // kernel must take the wide (Time) path and still match the scalar
  // decoder exactly.
  sched::FlowShopInstance inst = taillard_instance();
  for (auto& row : inst.proc) {
    for (auto& t : row) t += 1'000'000'000;
  }
  const auto perms = random_permutations(7, inst.jobs, 13);
  const auto lanes = as_lanes(perms);
  sched::FlowShopScratch scalar;
  sched::FlowShopBatchScratch batch;
  std::vector<Time> got(lanes.size());
  sched::flow_shop_makespan_batch(inst, lanes, got, batch);
  for (std::size_t l = 0; l < lanes.size(); ++l) {
    EXPECT_EQ(got[l], sched::flow_shop_makespan(inst, lanes[l], scalar));
    EXPECT_GT(got[l], std::numeric_limits<std::int32_t>::max());
  }
}

TEST(FlowShopBatchKernel, ThrowsOnWrongLaneLength) {
  const sched::FlowShopInstance inst = taillard_instance();
  sched::FlowShopBatchScratch batch;
  auto perms = random_permutations(3, inst.jobs, 7);
  perms[1].pop_back();
  std::vector<Time> out(perms.size());
  EXPECT_THROW(
      sched::flow_shop_makespan_batch(inst, as_lanes(perms), out, batch),
      std::invalid_argument);
  perms[1].push_back(0);
  perms[1].push_back(0);  // now one too long
  EXPECT_THROW(
      sched::flow_shop_makespan_batch(inst, as_lanes(perms), out, batch),
      std::invalid_argument);
}

// --- flow-shop scalar length validation (regression for the small fix) -------

TEST(FlowShopScalar, RejectsPartialPermutations) {
  const sched::FlowShopInstance inst = taillard_instance();
  std::vector<int> perm(static_cast<std::size_t>(inst.jobs));
  for (int j = 0; j < inst.jobs; ++j) perm[static_cast<std::size_t>(j)] = j;
  sched::FlowShopScratch scratch;
  EXPECT_NO_THROW(sched::flow_shop_makespan(inst, perm, scratch));

  std::vector<int> shorter(perm.begin(), perm.end() - 1);
  EXPECT_THROW(sched::flow_shop_makespan(inst, shorter),
               std::invalid_argument);
  EXPECT_THROW(sched::flow_shop_makespan(inst, shorter, scratch),
               std::invalid_argument);
  EXPECT_THROW(sched::flow_shop_completion_times(inst, shorter),
               std::invalid_argument);
  EXPECT_THROW(sched::flow_shop_schedule(inst, shorter),
               std::invalid_argument);

  std::vector<int> longer = perm;
  longer.push_back(0);
  EXPECT_THROW(sched::flow_shop_makespan(inst, longer, scratch),
               std::invalid_argument);

  // The constructive-heuristic escape hatch still accepts prefixes...
  EXPECT_NO_THROW(sched::flow_shop_makespan_prefix(inst, shorter, scratch));
  // ...and a full permutation through it matches the strict entry point.
  EXPECT_EQ(sched::flow_shop_makespan_prefix(inst, perm, scratch),
            sched::flow_shop_makespan(inst, perm));
  // ...but still rejects overlong sequences.
  EXPECT_THROW(sched::flow_shop_makespan_prefix(inst, longer, scratch),
               std::invalid_argument);
}

// --- job-shop kernel vs scalar -----------------------------------------------

std::vector<std::vector<int>> random_op_sequences(
    const sched::JobShopInstance& inst, int count, std::uint64_t seed) {
  par::Rng rng(seed);
  std::vector<std::vector<int>> seqs(static_cast<std::size_t>(count));
  for (auto& s : seqs) s = sched::random_operation_sequence(inst, rng);
  return seqs;
}

TEST(JobShopBatchKernel, SemiActiveMatchesScalarDecoder) {
  const sched::JobShopInstance& inst = sched::ft06().instance;
  sched::JobShopScratch scalar;
  sched::JobShopBatchScratch batch;
  for (int size : {1, 2, 7, 16, 33}) {
    SCOPED_TRACE(size);
    const auto seqs = random_op_sequences(inst, size, 41 + size);
    const auto lanes = as_lanes(seqs);
    std::vector<double> got(lanes.size(), -1.0);
    sched::job_shop_objective_batch(inst, lanes,
                                    sched::JobShopBatchDecoder::kSemiActive,
                                    Criterion::kMakespan, got, batch);
    for (std::size_t l = 0; l < lanes.size(); ++l) {
      const sched::Schedule& schedule =
          sched::decode_operation_based(inst, lanes[l], scalar);
      EXPECT_EQ(got[l], sched::job_shop_objective(inst, schedule,
                                                  Criterion::kMakespan, scalar))
          << "lane " << l;
    }
  }
}

TEST(JobShopBatchKernel, ActiveMatchesGifflerThompsonSequence) {
  const sched::JobShopInstance& inst = sched::ft06().instance;
  sched::JobShopScratch scalar;
  sched::JobShopBatchScratch batch;
  const auto seqs = random_op_sequences(inst, 33, 53);
  const auto lanes = as_lanes(seqs);
  std::vector<double> got(lanes.size(), -1.0);
  sched::job_shop_objective_batch(inst, lanes,
                                  sched::JobShopBatchDecoder::kActive,
                                  Criterion::kMakespan, got, batch);
  for (std::size_t l = 0; l < lanes.size(); ++l) {
    const sched::Schedule& schedule =
        sched::giffler_thompson_sequence(inst, lanes[l], scalar);
    EXPECT_EQ(got[l], sched::job_shop_objective(inst, schedule,
                                                Criterion::kMakespan, scalar))
        << "lane " << l;
  }
}

TEST(JobShopBatchKernel, EarlyExitIsExactBelowTheIncumbentAndBoundsAbove) {
  const sched::JobShopInstance& inst = sched::ft06().instance;
  sched::JobShopBatchScratch batch;
  const auto seqs = random_op_sequences(inst, 33, 67);
  const auto lanes = as_lanes(seqs);

  std::vector<double> exact(lanes.size());
  sched::job_shop_objective_batch(inst, lanes,
                                  sched::JobShopBatchDecoder::kSemiActive,
                                  Criterion::kMakespan, exact, batch);

  // Incumbent at the median: roughly half the lanes must prune.
  std::vector<double> sorted = exact;
  std::sort(sorted.begin(), sorted.end());
  const double incumbent = sorted[sorted.size() / 2];

  std::vector<double> pruned(lanes.size(), -1.0);
  sched::job_shop_objective_batch(inst, lanes,
                                  sched::JobShopBatchDecoder::kSemiActive,
                                  Criterion::kMakespan, pruned, batch,
                                  incumbent);
  for (std::size_t l = 0; l < lanes.size(); ++l) {
    SCOPED_TRACE(l);
    if (exact[l] < incumbent) {
      // Survivors are bit-identical to the exact decode.
      EXPECT_EQ(pruned[l], exact[l]);
    } else {
      // Pruned lanes report a lower bound that still certifies the
      // discard: >= incumbent, never above the true value.
      EXPECT_GE(pruned[l], incumbent);
      EXPECT_LE(pruned[l], exact[l]);
    }
  }

  // A non-makespan criterion must ignore the incumbent entirely.
  std::vector<double> tardiness_exact(lanes.size());
  std::vector<double> tardiness_incumbent(lanes.size());
  sched::job_shop_objective_batch(
      inst, lanes, sched::JobShopBatchDecoder::kSemiActive,
      Criterion::kTotalWeightedCompletion, tardiness_exact, batch);
  sched::job_shop_objective_batch(
      inst, lanes, sched::JobShopBatchDecoder::kSemiActive,
      Criterion::kTotalWeightedCompletion, tardiness_incumbent, batch, 1.0);
  EXPECT_EQ(tardiness_exact, tardiness_incumbent);
}

TEST(JobShopBatchKernel, ThrowsOnWrongSequenceLength) {
  const sched::JobShopInstance& inst = sched::ft06().instance;
  sched::JobShopBatchScratch batch;
  auto seqs = random_op_sequences(inst, 2, 3);
  seqs[1].pop_back();
  std::vector<double> out(seqs.size());
  EXPECT_THROW(sched::job_shop_objective_batch(
                   inst, as_lanes(seqs), sched::JobShopBatchDecoder::kSemiActive,
                   Criterion::kMakespan, out, batch),
               std::invalid_argument);
}

// --- batch-vs-scalar equivalence across the whole registry -------------------

// Every registered problem (plus the alternate encodings/decoders that
// select different objective_batch code paths). Fuzzed genomes, batch
// sizes {1,2,7,16,33}, all four backends: the chunked batch path must
// reproduce the scalar per-genome objective bit for bit. (The double
// models run the same arithmetic in the same order on both paths, so
// exact equality is the right bar there too.)
const char* kProblemSpecs[] = {
    "problem=flowshop instance=gen:jobs=12,machines=5,seed=3",
    "problem=flowshop instance=gen:jobs=12,machines=5,seed=3 "
    "criterion=total-flow",
    "problem=flowshop encoding=random-key instance=gen:jobs=12,machines=5,"
    "seed=3",
    "problem=jobshop instance=ft06",
    "problem=jobshop decoder=active instance=ft06",
    "problem=jobshop encoding=rules instance=ft06",
    "problem=openshop decoder=lpt-machine instance=gen:jobs=4,machines=3,"
    "seed=5",
    "problem=hybrid-flowshop instance=gen:jobs=5,stages=2x2,seed=5",
    "problem=flexible-jobshop instance=gen:jobs=4,machines=3,ops=3,"
    "eligible=2,seed=5",
    "problem=lot-streaming instance=gen:jobs=3,stages=2x2,sublots=2,seed=5",
    "problem=fuzzy-flowshop instance=gen:jobs=5,machines=3,seed=5 spread=0.25",
    "problem=stochastic-jobshop instance=gen:jobs=4,machines=3,seed=5 "
    "scenarios=3 instance-seed=9",
    "problem=energy-flowshop instance=gen:jobs=5,machines=3,seed=5 "
    "w-makespan=0.5 w-energy=0.02 w-peak=1.5 instance-seed=4",
    "problem=dynamic-jobshop instance=gen:jobs=4,machines=3,seed=5 "
    "downtimes=2 instance-seed=3",
};

class BatchScalarEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(BatchScalarEquivalence, ChunkedBatchesMatchScalarOnEveryBackend) {
  const ProblemPtr problem = ProblemSpec::parse(GetParam()).build();
  par::Rng rng(97);
  std::vector<Genome> genomes;
  for (int i = 0; i < 33; ++i) genomes.push_back(problem->random_genome(rng));

  std::vector<double> expect(genomes.size());
  for (std::size_t i = 0; i < genomes.size(); ++i) {
    expect[i] = problem->objective(genomes[i]);
  }

  for (EvalBackend backend :
       {EvalBackend::kSerial, EvalBackend::kThreadPool, EvalBackend::kOpenMp,
        EvalBackend::kAsyncPool}) {
    for (int eval_batch : {1, 2, 7, 16, 33}) {
      SCOPED_TRACE("backend=" + std::to_string(static_cast<int>(backend)) +
                   " eval_batch=" + std::to_string(eval_batch));
      Evaluator evaluator(problem, backend, nullptr,
                          /*async_coordinator_only=*/false, eval_batch);
      EXPECT_EQ(evaluator.eval_batch(), eval_batch);
      std::vector<double> got(genomes.size(), -1.0);
      evaluator.evaluate(genomes, got);
      EXPECT_EQ(got, expect);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllRegistryProblems, BatchScalarEquivalence,
                         ::testing::ValuesIn(kProblemSpecs));

TEST(BatchScalarEquivalence, AutoResolvesToAPositiveBlockSize) {
  const ProblemPtr problem =
      ProblemSpec::parse("problem=flowshop instance=ta001").build();
  Evaluator evaluator(problem, EvalBackend::kSerial, nullptr, false,
                      /*eval_batch=*/0);
  EXPECT_GT(evaluator.eval_batch(), 0);
}

// --- eval_batch must be trace-invariant at the engine level ------------------

class EvalBatchTraceInvariance : public ::testing::TestWithParam<const char*> {
};

TEST_P(EvalBatchTraceInvariance, RunResultIdenticalForEveryChunkSize) {
  const std::string base = GetParam();
  const StopCondition stop = StopCondition::generations(5);
  const RunResult reference = Solver::build(RunSpec::parse(base)).run(stop);
  for (const char* token :
       {" eval_batch=auto", " eval_batch=1", " eval_batch=7",
        " eval_batch=33"}) {
    SCOPED_TRACE(token);
    const RunResult result =
        Solver::build(RunSpec::parse(base + token)).run(stop);
    EXPECT_EQ(result.best_objective, reference.best_objective);
    EXPECT_EQ(result.best.seq, reference.best.seq);
    EXPECT_EQ(result.history, reference.history);
    EXPECT_EQ(result.evaluations, reference.evaluations);
    EXPECT_EQ(result.generations, reference.generations);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Engines, EvalBatchTraceInvariance,
    ::testing::Values(
        "problem=flowshop instance=gen:jobs=10,machines=4,seed=3 "
        "engine=simple pop=14 elites=2 seed=5",
        "problem=jobshop instance=ft06 decoder=active engine=island "
        "islands=3 pop=8 interval=2 seed=5 eval=async_pool "
        "eval_cache=lru:4096",
        "problem=flowshop encoding=random-key "
        "instance=gen:jobs=10,machines=4,seed=3 engine=cellular width=4 "
        "height=3 seed=5",
        "problem=fuzzy-flowshop instance=gen:jobs=5,machines=3,seed=5 "
        "spread=0.25 engine=master-slave pop=10 elites=2 seed=5",
        "problem=jobshop instance=ft06 engine=quantum islands=2 pop=6 "
        "seed=5"));

// --- eval_batch spec token ---------------------------------------------------

TEST(EvalBatchSpec, ParsesRendersAndRoundTrips) {
  SolverSpec spec = SolverSpec::parse("engine=simple eval_batch=16");
  ASSERT_TRUE(spec.eval_batch.has_value());
  EXPECT_EQ(*spec.eval_batch, 16);
  EXPECT_NE(spec.to_string().find("eval_batch=16"), std::string::npos);
  EXPECT_EQ(SolverSpec::parse(spec.to_string()), spec);

  SolverSpec auto_spec = SolverSpec::parse("eval_batch=auto");
  ASSERT_TRUE(auto_spec.eval_batch.has_value());
  EXPECT_EQ(*auto_spec.eval_batch, 0);
  EXPECT_NE(auto_spec.to_string().find("eval_batch=auto"), std::string::npos);
  EXPECT_EQ(SolverSpec::parse(auto_spec.to_string()), auto_spec);

  // Unset stays unset: no eval_batch token in the canonical form.
  EXPECT_EQ(SolverSpec::parse("engine=simple").to_string()
                .find("eval_batch"),
            std::string::npos);
}

TEST(EvalBatchSpec, RejectsNonPositiveAndMalformedValues) {
  EXPECT_THROW(SolverSpec::parse("eval_batch=0"), std::invalid_argument);
  EXPECT_THROW(SolverSpec::parse("eval_batch=-3"), std::invalid_argument);
  EXPECT_THROW(SolverSpec::parse("eval_batch=lots"), std::invalid_argument);
  EXPECT_THROW(SolverSpec::parse("eval_batch="), std::invalid_argument);
}

TEST(EvalBatchSpec, RoutesThroughRunSpecToTheSolverHalf) {
  const RunSpec run = RunSpec::parse(
      "problem=flowshop instance=ta001 engine=simple eval_batch=8");
  ASSERT_TRUE(run.solver.eval_batch.has_value());
  EXPECT_EQ(*run.solver.eval_batch, 8);
  EXPECT_EQ(RunSpec::parse(run.to_string()), run);
}

}  // namespace
}  // namespace psga::ga
