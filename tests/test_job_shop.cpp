#include "src/sched/job_shop.h"

#include <gtest/gtest.h>

#include "src/par/rng.h"
#include "src/sched/classics.h"

namespace psga::sched {
namespace {

/// 2 jobs, 2 machines. Job 0: m0 (3) then m1 (2). Job 1: m1 (4) then m0 (1).
JobShopInstance tiny() {
  JobShopInstance inst;
  inst.jobs = 2;
  inst.machines = 2;
  inst.ops = {
      {{0, 3}, {1, 2}},
      {{1, 4}, {0, 1}},
  };
  return inst;
}

TEST(JobShop, TotalOps) {
  EXPECT_EQ(tiny().total_ops(), 4);
  EXPECT_EQ(ft06().instance.total_ops(), 36);
}

TEST(JobShop, HandComputedOperationBasedDecode) {
  const JobShopInstance inst = tiny();
  // Sequence 0,1,0,1: j0 m0 [0,3); j1 m1 [0,4); j0 m1 [4,6); j1 m0 [4,5).
  const std::vector<int> seq = {0, 1, 0, 1};
  const Schedule s = decode_operation_based(inst, seq);
  EXPECT_EQ(s.makespan(), 6);
  EXPECT_EQ(validate(s, inst.validation_spec()), std::nullopt);
}

TEST(JobShop, AlternativeSequenceDecodes) {
  const JobShopInstance inst = tiny();
  // Sequence 1,1,0,0: j1 m1 [0,4); j1 m0 [4,5); j0 m0 [5,8); j0 m1 [8,10).
  const std::vector<int> seq = {1, 1, 0, 0};
  const Schedule s = decode_operation_based(inst, seq);
  EXPECT_EQ(s.makespan(), 10);
}

TEST(JobShop, ReleaseTimesRespected) {
  JobShopInstance inst = tiny();
  inst.attrs.release = {2, 0};
  const std::vector<int> seq = {0, 1, 0, 1};
  const Schedule s = decode_operation_based(inst, seq);
  EXPECT_EQ(validate(s, inst.validation_spec()), std::nullopt);
  for (const auto& op : s.ops) {
    if (op.job == 0) EXPECT_GE(op.start, 2);
  }
}

class JobShopDecoderSweep : public ::testing::TestWithParam<int> {};

TEST_P(JobShopDecoderSweep, RandomSequencesAreFeasible) {
  par::Rng rng(static_cast<std::uint64_t>(100 + GetParam()));
  const JobShopInstance& inst = ft06().instance;
  for (int trial = 0; trial < 10; ++trial) {
    const auto seq = random_operation_sequence(inst, rng);
    const Schedule semi_active = decode_operation_based(inst, seq);
    ASSERT_EQ(validate(semi_active, inst.validation_spec()), std::nullopt);
    const Schedule active = giffler_thompson_sequence(inst, seq);
    ASSERT_EQ(validate(active, inst.validation_spec()), std::nullopt);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, JobShopDecoderSweep, ::testing::Range(0, 8));

TEST(JobShop, GifflerThompsonRulesFeasibleOnFt06) {
  par::Rng rng(7);
  const JobShopInstance& inst = ft06().instance;
  for (PriorityRule rule :
       {PriorityRule::kSpt, PriorityRule::kLpt,
        PriorityRule::kMostWorkRemaining, PriorityRule::kFcfs,
        PriorityRule::kRandom}) {
    const Schedule s = giffler_thompson(inst, rule, rng);
    ASSERT_EQ(validate(s, inst.validation_spec()), std::nullopt);
    EXPECT_GE(s.makespan(), ft06().optimum);  // optimum is a lower bound
    EXPECT_LE(s.makespan(), 3 * ft06().optimum);
  }
}

TEST(JobShop, GifflerThompsonNeverWorseThanNaiveBound) {
  // Active schedules are within (number of ops) * max duration trivially;
  // sanity check the builder doesn't blow up on the tiny instance.
  par::Rng rng(3);
  const JobShopInstance inst = tiny();
  const Schedule s = giffler_thompson(inst, PriorityRule::kSpt, rng);
  EXPECT_EQ(validate(s, inst.validation_spec()), std::nullopt);
  EXPECT_LE(s.makespan(), 10);
}

TEST(JobShop, GtSequenceDecoderActiveDominatesOrEquals) {
  // The GT decoder produces active schedules, which on average beat the
  // semi-active decoder for the same chromosome. Check a weak aggregate
  // version of that claim on ft06.
  par::Rng rng(11);
  const JobShopInstance& inst = ft06().instance;
  double semi_total = 0.0;
  double active_total = 0.0;
  for (int trial = 0; trial < 40; ++trial) {
    const auto seq = random_operation_sequence(inst, rng);
    semi_total += static_cast<double>(decode_operation_based(inst, seq).makespan());
    active_total +=
        static_cast<double>(giffler_thompson_sequence(inst, seq).makespan());
  }
  EXPECT_LT(active_total, semi_total);
}

TEST(JobShop, RandomSequenceIsValidChromosome) {
  par::Rng rng(5);
  const JobShopInstance& inst = ft06().instance;
  const auto seq = random_operation_sequence(inst, rng);
  ASSERT_EQ(seq.size(), 36u);
  std::vector<int> count(6, 0);
  for (int j : seq) ++count[static_cast<std::size_t>(j)];
  for (int c : count) EXPECT_EQ(c, 6);
}

TEST(JobShop, ObjectiveUsesCompletionTimes) {
  JobShopInstance inst = tiny();
  inst.attrs.due = {5, 5};
  inst.attrs.weight = {1.0, 1.0};
  const std::vector<int> seq = {0, 1, 0, 1};
  const Schedule s = decode_operation_based(inst, seq);
  // completion: j0 = 6, j1 = 5. Tardiness = {1, 0}.
  EXPECT_DOUBLE_EQ(job_shop_objective(inst, s, Criterion::kMakespan), 6.0);
  EXPECT_DOUBLE_EQ(
      job_shop_objective(inst, s, Criterion::kTotalWeightedTardiness), 1.0);
}

}  // namespace
}  // namespace psga::sched
