#include "src/ga/selection.h"

#include <gtest/gtest.h>

#include <vector>

namespace psga::ga {
namespace {

std::vector<int> tally(const Selection& sel, std::span<const double> fitness,
                       int draws, std::uint64_t seed) {
  par::Rng rng(seed);
  std::vector<int> counts(fitness.size(), 0);
  for (int i = 0; i < draws; ++i) {
    ++counts[static_cast<std::size_t>(sel.pick(fitness, rng))];
  }
  return counts;
}

TEST(Roulette, ProportionalToFitness) {
  RouletteSelection sel;
  const std::vector<double> fitness = {1.0, 3.0};
  const auto counts = tally(sel, fitness, 20000, 1);
  EXPECT_NEAR(counts[1] / 20000.0, 0.75, 0.02);
}

TEST(Roulette, ZeroTotalFallsBackToUniform) {
  RouletteSelection sel;
  const std::vector<double> fitness = {0.0, 0.0, 0.0};
  const auto counts = tally(sel, fitness, 9000, 2);
  for (int c : counts) EXPECT_NEAR(c / 9000.0, 1.0 / 3.0, 0.03);
}

TEST(Roulette, NegativeFitnessTreatedAsZero) {
  RouletteSelection sel;
  const std::vector<double> fitness = {-5.0, 1.0};
  const auto counts = tally(sel, fitness, 5000, 3);
  EXPECT_EQ(counts[0], 0);
}

TEST(Sus, CoversProportionally) {
  StochasticUniversalSelection sel;
  const std::vector<double> fitness = {1.0, 1.0, 2.0};
  par::Rng rng(4);
  std::vector<int> counts(3, 0);
  for (int round = 0; round < 1000; ++round) {
    for (int idx : sel.pick_many(fitness, 4, rng)) {
      ++counts[static_cast<std::size_t>(idx)];
    }
  }
  const double total = 4000.0;
  EXPECT_NEAR(counts[2] / total, 0.5, 0.03);
  EXPECT_NEAR(counts[0] / total, 0.25, 0.03);
}

TEST(Sus, LowVarianceGuarantee) {
  // With equal fitness and n pointers = n individuals, SUS must pick every
  // individual exactly once.
  StochasticUniversalSelection sel;
  const std::vector<double> fitness = {1.0, 1.0, 1.0, 1.0};
  par::Rng rng(5);
  for (int round = 0; round < 50; ++round) {
    const auto picks = sel.pick_many(fitness, 4, rng);
    std::vector<int> counts(4, 0);
    for (int idx : picks) ++counts[static_cast<std::size_t>(idx)];
    for (int c : counts) EXPECT_EQ(c, 1);
  }
}

TEST(Tournament, HigherKMoreSelective) {
  const std::vector<double> fitness = {1.0, 2.0, 3.0, 4.0, 5.0};
  const auto k2 = tally(TournamentSelection(2), fitness, 20000, 6);
  const auto k5 = tally(TournamentSelection(5), fitness, 20000, 7);
  // The best individual wins more often with a bigger tournament.
  EXPECT_GT(k5[4], k2[4]);
}

TEST(Tournament, AlwaysPicksValidIndex) {
  TournamentSelection sel(3);
  const std::vector<double> fitness = {2.0};
  par::Rng rng(8);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sel.pick(fitness, rng), 0);
}

TEST(Rank, OrderMattersNotMagnitude) {
  // Huge fitness gaps do not distort rank selection: compare against
  // roulette on the same values.
  const std::vector<double> fitness = {1.0, 1e9};
  const auto rank_counts = tally(RankSelection(1.8), fitness, 20000, 9);
  const auto roulette_counts = tally(RouletteSelection{}, fitness, 20000, 10);
  // Roulette almost never picks index 0; rank still does ~30% of the time
  // (pressure 1.8 -> probabilities 0.1/0.9... actually (2-1.8)/2=0.1 and
  // 1.8/2=0.9 over two ranks).
  EXPECT_LT(roulette_counts[0], 10);
  EXPECT_NEAR(rank_counts[0] / 20000.0, 0.1, 0.02);
}

TEST(ElitistRoulette, BiasesTowardTopFraction) {
  ElitistRouletteSelection sel(0.2, 1.0);  // always elite mode
  const std::vector<double> fitness = {1.0, 2.0, 3.0, 4.0, 100.0};
  const auto counts = tally(sel, fitness, 5000, 11);
  // With elite_fraction 0.2 of 5 = 1 elite: always index 4.
  EXPECT_EQ(counts[4], 5000);
}

TEST(ElitistRoulette, FallsBackToRoulette) {
  ElitistRouletteSelection sel(0.2, 0.0);  // never elite mode
  const std::vector<double> fitness = {1.0, 3.0};
  const auto counts = tally(sel, fitness, 20000, 12);
  EXPECT_NEAR(counts[1] / 20000.0, 0.75, 0.02);
}

TEST(Selection, PickManyDefaultMatchesCount) {
  TournamentSelection sel(2);
  const std::vector<double> fitness = {1.0, 2.0, 3.0};
  par::Rng rng(13);
  EXPECT_EQ(sel.pick_many(fitness, 7, rng).size(), 7u);
  EXPECT_TRUE(sel.pick_many(fitness, 0, rng).empty());
}

TEST(Selection, Names) {
  EXPECT_EQ(RouletteSelection{}.name(), "roulette");
  EXPECT_EQ(StochasticUniversalSelection{}.name(), "sus");
  EXPECT_EQ(TournamentSelection{4}.name(), "tournament4");
  EXPECT_EQ(RankSelection{}.name(), "rank");
  EXPECT_EQ(ElitistRouletteSelection{}.name(), "elitist-roulette");
}

}  // namespace
}  // namespace psga::ga
