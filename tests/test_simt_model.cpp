#include "src/par/simt_model.h"

#include <gtest/gtest.h>

namespace psga::par {
namespace {

SimtModelParams base_params() {
  SimtModelParams p;
  p.lanes = 448;
  p.divergence = 1.0;
  p.launch_overhead_us = 0.0;
  p.serial_fraction = 0.0;
  p.lane_slowdown = 1.0;
  return p;
}

TEST(SimtModel, SingleLaneEqualsHost) {
  SimtModelParams p = base_params();
  p.lanes = 1;
  SimtModel model(p);
  EXPECT_DOUBLE_EQ(model.device_time_us(100, 10.0),
                   model.host_time_us(100, 10.0));
  EXPECT_DOUBLE_EQ(model.speedup(100, 10.0), 1.0);
}

TEST(SimtModel, PerfectScalingWithoutOverheads) {
  SimtModel model(base_params());
  // 448 tasks on 448 ideal lanes: one wave.
  EXPECT_DOUBLE_EQ(model.device_time_us(448, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(model.speedup(448, 10.0), 448.0);
}

TEST(SimtModel, WaveQuantization) {
  SimtModel model(base_params());
  // 449 tasks need two waves.
  EXPECT_DOUBLE_EQ(model.device_time_us(449, 10.0), 20.0);
}

TEST(SimtModel, ZeroTasksZeroTime) {
  SimtModel model(base_params());
  EXPECT_DOUBLE_EQ(model.device_time_us(0, 10.0), 0.0);
}

TEST(SimtModel, LaunchOverheadBoundsSmallKernels) {
  SimtModelParams p = base_params();
  p.launch_overhead_us = 100.0;
  SimtModel model(p);
  // One tiny task: overhead dominates and speedup < 1.
  EXPECT_LT(model.speedup(1, 1.0), 1.0);
}

TEST(SimtModel, SerialFractionCapsSpeedup) {
  SimtModelParams p = base_params();
  p.serial_fraction = 0.01;  // Amdahl cap at 100x
  SimtModel model(p);
  EXPECT_LT(model.speedup(100000, 10.0), 100.0);
  EXPECT_GT(model.speedup(100000, 10.0), 50.0);
}

TEST(SimtModel, DivergenceReducesEffectiveLanes) {
  SimtModelParams ideal = base_params();
  SimtModelParams diverged = base_params();
  diverged.divergence = 0.5;
  EXPECT_GT(SimtModel(ideal).speedup(10000, 10.0),
            SimtModel(diverged).speedup(10000, 10.0));
}

TEST(SimtModel, LaneSlowdownScalesTime) {
  SimtModelParams p = base_params();
  p.lane_slowdown = 4.0;
  SimtModel model(p);
  EXPECT_DOUBLE_EQ(model.device_time_us(448, 10.0), 40.0);
}

TEST(SimtModel, SurveyRegimeProducesReportedMagnitudes) {
  // With parameters in the range of the surveyed GPUs, batch evaluation of
  // a 1056-individual population (AitZai's population size) of ~50us tasks
  // should land in the 10-120x window the surveyed papers report.
  SimtModelParams p;
  p.lanes = 448;           // Tesla C2075
  p.divergence = 0.85;
  p.launch_overhead_us = 8;
  p.serial_fraction = 0.02;
  p.lane_slowdown = 4.0;
  SimtModel model(p);
  const double s = model.speedup(1056, 50.0);
  EXPECT_GT(s, 10.0);
  EXPECT_LT(s, 120.0);
}

}  // namespace
}  // namespace psga::par
