#include "src/stats/descriptive.h"
#include "src/stats/table.h"

#include <gtest/gtest.h>

#include <vector>

namespace psga::stats {
namespace {

TEST(Descriptive, MeanAndStddev) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(stddev(xs), 2.138089935299395, 1e-12);
}

TEST(Descriptive, EmptyInputsAreZero) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
  EXPECT_DOUBLE_EQ(min_of({}), 0.0);
  EXPECT_DOUBLE_EQ(max_of({}), 0.0);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Descriptive, SingleElementStddevZero) {
  const std::vector<double> xs = {3.0};
  EXPECT_DOUBLE_EQ(stddev(xs), 0.0);
}

TEST(Descriptive, MinMaxMedian) {
  const std::vector<double> xs = {5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(min_of(xs), 1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 9.0);
  EXPECT_DOUBLE_EQ(median({5.0, 1.0, 9.0, 3.0}), 4.0);
  EXPECT_DOUBLE_EQ(median({5.0, 1.0, 9.0}), 5.0);
}

TEST(Descriptive, Rpd) {
  EXPECT_DOUBLE_EQ(rpd(110.0, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(rpd(90.0, 100.0), -10.0);
  EXPECT_DOUBLE_EQ(rpd(100.0, 0.0), 0.0);  // guarded
}

TEST(Descriptive, MeanRpd) {
  const std::vector<double> values = {110.0, 120.0};
  EXPECT_DOUBLE_EQ(mean_rpd(values, 100.0), 15.0);
}

TEST(Descriptive, SpeedupTable) {
  const auto table = speedup_table({{1, 8.0}, {2, 4.0}, {4, 2.5}});
  ASSERT_EQ(table.size(), 3u);
  EXPECT_DOUBLE_EQ(table[0].speedup, 1.0);
  EXPECT_DOUBLE_EQ(table[1].speedup, 2.0);
  EXPECT_DOUBLE_EQ(table[1].efficiency, 1.0);
  EXPECT_DOUBLE_EQ(table[2].speedup, 3.2);
  EXPECT_DOUBLE_EQ(table[2].efficiency, 0.8);
}

TEST(Table, RendersAlignedColumns) {
  Table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("| alpha"), std::string::npos);
  // All lines same length.
  std::size_t first_len = out.find('\n');
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t next = out.find('\n', pos);
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

TEST(Table, ShortRowsArePadded) {
  Table table({"a", "b", "c"});
  table.add_row({"only"});
  const std::string csv = table.to_csv();
  EXPECT_EQ(csv, "a,b,c\nonly,,\n");
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Pareto, FrontFiltersDominated) {
  const auto front = pareto_front_2d({{3, 3}, {1, 5}, {2, 4}, {2, 6}, {5, 1}});
  EXPECT_EQ(front, (std::vector<std::pair<double, double>>{
                       {1, 5}, {2, 4}, {3, 3}, {5, 1}}));
}

TEST(Pareto, EqualFirstCoordinateKeepsBetterSecond) {
  const auto front = pareto_front_2d({{1, 5}, {1, 3}, {2, 2}});
  EXPECT_EQ(front,
            (std::vector<std::pair<double, double>>{{1, 3}, {2, 2}}));
}

TEST(Hypervolume, SinglePointRectangle) {
  // Point (2, 3) vs reference (10, 10): area (10-2)*(10-3) = 56.
  EXPECT_DOUBLE_EQ(hypervolume_2d({{2, 3}}, {10, 10}), 56.0);
}

TEST(Hypervolume, TwoPointsAddStripes) {
  // Points (2, 6) and (5, 3), ref (10, 10):
  // strip of (5,3): (10-5)*(10-3) = 35; strip of (2,6): (5-2)*(10-6) = 12.
  EXPECT_DOUBLE_EQ(hypervolume_2d({{2, 6}, {5, 3}}, {10, 10}), 47.0);
}

TEST(Hypervolume, DominatedPointAddsNothing) {
  const double base = hypervolume_2d({{2, 6}, {5, 3}}, {10, 10});
  EXPECT_DOUBLE_EQ(hypervolume_2d({{2, 6}, {5, 3}, {6, 7}}, {10, 10}), base);
}

TEST(Hypervolume, PointsOutsideReferenceIgnored) {
  EXPECT_DOUBLE_EQ(hypervolume_2d({{12, 3}}, {10, 10}), 0.0);
  EXPECT_DOUBLE_EQ(hypervolume_2d({{3, 12}}, {10, 10}), 0.0);
  EXPECT_DOUBLE_EQ(hypervolume_2d({}, {10, 10}), 0.0);
}

TEST(Hypervolume, BetterFrontHasLargerVolume) {
  const double worse = hypervolume_2d({{4, 4}}, {10, 10});
  const double better = hypervolume_2d({{2, 4}, {4, 2}}, {10, 10});
  EXPECT_GT(better, worse);
}

}  // namespace
}  // namespace psga::stats
