#include "src/ga/quantum_ga.h"

#include <gtest/gtest.h>

#include "src/ga/problems.h"
#include "src/sched/classics.h"
#include "src/sched/stochastic.h"
#include "src/sched/taillard.h"

namespace psga::ga {
namespace {

ProblemPtr job_shop() {
  return std::make_shared<JobShopProblem>(sched::ft06().instance);
}

QuantumGaConfig config(std::uint64_t seed = 1) {
  QuantumGaConfig cfg;
  cfg.islands = 3;
  cfg.population = 12;
  cfg.generations = 40;
  cfg.seed = seed;
  return cfg;
}

TEST(QuantumGa, ImprovesOnJobShop) {
  QuantumGa ga(job_shop(), config());
  const RunResult result = ga.run();
  ASSERT_FALSE(result.history.empty());
  EXPECT_LE(result.best_objective, result.history.front());
  EXPECT_GE(result.best_objective, 55.0);
}

TEST(QuantumGa, BestGenomeIsValid) {
  QuantumGa ga(job_shop(), config(3));
  const RunResult result = ga.run();
  EXPECT_TRUE(genome_valid(result.best, job_shop()->traits()));
}

TEST(QuantumGa, Deterministic) {
  QuantumGa a(job_shop(), config(5));
  QuantumGa b(job_shop(), config(5));
  EXPECT_EQ(a.run().history, b.run().history);
}

TEST(QuantumGa, IslandBestsBoundGlobal) {
  QuantumGa ga(job_shop(), config(7));
  const RunResult result = ga.run();
  for (double b : result.islands->best) {
    EXPECT_GE(b, result.best_objective);
  }
}

TEST(QuantumGa, WorksOnPermutationProblems) {
  auto fs = std::make_shared<FlowShopProblem>(
      sched::make_taillard(sched::taillard_20x5().front()));
  QuantumGa ga(fs, config(9));
  const RunResult result = ga.run();
  EXPECT_TRUE(genome_valid(result.best, fs->traits()));
  EXPECT_GE(result.best_objective, 1278.0);  // ta001 optimum bound
}

TEST(QuantumGa, StochasticExpectedValueModel) {
  // The actual setting of Gu et al. [28]: stochastic JSSP under the
  // expected-value model.
  auto shop = std::make_shared<sched::StochasticJobShop>(
      sched::ft06().instance, 0.2, 8, 42);
  auto problem = std::make_shared<StochasticJobShopProblem>(shop);
  QuantumGaConfig cfg = config(11);
  cfg.generations = 25;
  QuantumGa ga(problem, cfg);
  const RunResult result = ga.run();
  EXPECT_LE(result.best_objective, result.history.front());
}

TEST(QuantumGa, MigrationOffStillRuns) {
  QuantumGaConfig cfg = config(13);
  cfg.migration_interval = 0;
  QuantumGa ga(job_shop(), cfg);
  const RunResult result = ga.run();
  EXPECT_GT(result.evaluations, 0);
}

TEST(QuantumGa, EvaluationCount) {
  QuantumGaConfig cfg = config(15);
  cfg.islands = 2;
  cfg.population = 10;
  cfg.generations = 7;
  QuantumGa ga(job_shop(), cfg);
  const RunResult result = ga.run();
  EXPECT_EQ(result.evaluations, 2LL * 10 * 7);
}

}  // namespace
}  // namespace psga::ga
