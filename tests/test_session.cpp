// psga::session lockdown: event grammar round trips, the engine
// population-seeding seam (seeded-vs-fresh init diverges only in
// generation-0 ancestry), warm-start evaluation savings against a
// cold-restart reference, transcript determinism (in-process twice, and
// in-process vs through the daemon — bit-identical), and SessionManager
// ordering/fairness/error plumbing. Lives in the pipeline test binary so
// the ci.sh sanitizer leg races manager workers against daemon
// connection threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <utility>
#include <vector>

#include "src/ga/problem_registry.h"
#include "src/ga/solver.h"
#include "src/session/manager.h"
#include "src/session/session.h"
#include "src/svc/client.h"
#include "src/svc/server.h"

namespace psga::session {
namespace {

std::string temp_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/psga_session_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

// --- event grammar ----------------------------------------------------------

TEST(SessionEvent, ParseRoundTripsCanonicalTokens) {
  for (const char* text :
       {"kind=breakdown time=25 machine=2 duration=10",
        "kind=arrival time=40 route=0:3,2:5,1:4 due=120",
        "kind=arrival time=7 route=1:2,0:9",
        "kind=due time=60 job=3 due=95"}) {
    const Event event = Event::parse(text);
    EXPECT_EQ(event.to_string(), text);
    // JSON round trip preserves the canonical token form too.
    EXPECT_EQ(Event::from_json(event.to_json()).to_string(), text);
  }
}

TEST(SessionEvent, ParseRejectsMalformedTokens) {
  EXPECT_THROW(Event::parse(""), std::invalid_argument);
  EXPECT_THROW(Event::parse("time=5"), std::invalid_argument);
  EXPECT_THROW(Event::parse("kind=meteor time=5"), std::invalid_argument);
  EXPECT_THROW(Event::parse("kind=breakdown bogus=1"), std::invalid_argument);
  EXPECT_THROW(Event::parse("kind=arrival time=1 route=0:"),
               std::invalid_argument);
}

TEST(SessionEvent, RandomTraceIsDeterministicAndOrdered) {
  const sched::JobShopInstance inst = ga::resolve_job_shop_instance("ft06");
  const std::vector<Event> a = random_trace(inst, 10, 7);
  const std::vector<Event> b = random_trace(inst, 10, 7);
  ASSERT_EQ(a.size(), 10u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].to_string(), b[i].to_string());
    if (i > 0) EXPECT_GE(a[i].time, a[i - 1].time);
  }
  // A different seed yields a different trace.
  const std::vector<Event> c = random_trace(inst, 10, 8);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_diff = any_diff || a[i].to_string() != c[i].to_string();
  }
  EXPECT_TRUE(any_diff);
}

// --- engine seeding seam ----------------------------------------------------

/// Population canonicalized for cross-engine comparison: engines report
/// snapshots sorted best-first, but tie order among equal objectives
/// depends on internal layout (grid cells, island deal order).
std::vector<std::pair<double, std::vector<int>>> canonical(
    const ga::PopulationSection& section) {
  std::vector<std::pair<double, std::vector<int>>> rows;
  for (std::size_t i = 0; i < section.genomes.size(); ++i) {
    rows.emplace_back(section.objectives[i], section.genomes[i].seq);
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// The spec-level seeding contract, for every engine family that
/// supports it: re-injecting the exact generation-0 population of a
/// fresh run reproduces that run's generation-0 state — the seeding path
/// replaces initial ancestry and nothing else.
TEST(EngineSeeding, SeededInitReproducesFreshGenerationZero) {
  const std::string problem = "problem=jobshop instance=ft06 ";
  for (const char* engine :
       {"engine=simple pop=16 seed=5", "engine=master-slave pop=16 seed=5",
        "engine=island islands=2 pop=8 seed=5",
        "engine=memetic pop=16 seed=5 interval=3 refine=1 budget=40",
        "engine=cellular width=4 height=4 seed=5"}) {
    SCOPED_TRACE(engine);
    const ga::RunSpec spec = ga::RunSpec::parse(problem + engine);

    ga::Solver fresh = ga::Solver::build(spec);
    fresh.run(ga::StopCondition::generations(0));
    const ga::PopulationSection gen0 = fresh.engine().population_snapshot();
    ASSERT_FALSE(gen0.genomes.empty());

    ga::Solver seeded = ga::Solver::build(spec);
    ASSERT_TRUE(seeded.engine().seed_population(gen0.genomes));
    seeded.run(ga::StopCondition::generations(0));
    EXPECT_EQ(canonical(seeded.engine().population_snapshot()),
              canonical(gen0));
  }
}

TEST(EngineSeeding, PartialSeedIsKeptAndShortfallIsRandom) {
  const ga::RunSpec spec = ga::RunSpec::parse(
      "problem=jobshop instance=ft06 engine=simple pop=16 seed=5");
  ga::Solver fresh = ga::Solver::build(spec);
  fresh.run(ga::StopCondition::generations(0));
  const ga::PopulationSection donor = fresh.engine().population_snapshot();
  const std::vector<ga::Genome> seeds(donor.genomes.begin(),
                                      donor.genomes.begin() + 3);

  ga::Solver seeded = ga::Solver::build(spec);
  ASSERT_TRUE(seeded.engine().seed_population(seeds));
  seeded.run(ga::StopCondition::generations(0));
  const ga::PopulationSection after = seeded.engine().population_snapshot();
  EXPECT_EQ(after.genomes.size(), 16u);
  for (const ga::Genome& seed : seeds) {
    const bool found =
        std::any_of(after.genomes.begin(), after.genomes.end(),
                    [&](const ga::Genome& g) { return g.seq == seed.seq; });
    EXPECT_TRUE(found);
  }
}

TEST(EngineSeeding, SeededRunsAreDeterministic) {
  const ga::RunSpec spec = ga::RunSpec::parse(
      "problem=jobshop instance=ft06 engine=simple pop=16 seed=5");
  ga::Solver donor = ga::Solver::build(spec);
  donor.run(ga::StopCondition::generations(3));
  const std::vector<ga::Genome> seeds =
      donor.engine().population_snapshot().genomes;

  ga::RunResult first, second;
  for (ga::RunResult* result : {&first, &second}) {
    ga::Solver solver = ga::Solver::build(spec);
    ASSERT_TRUE(solver.engine().seed_population(seeds));
    *result = solver.run(ga::StopCondition::generations(8));
  }
  EXPECT_EQ(first.best_objective, second.best_objective);
  EXPECT_EQ(first.history, second.history);
  EXPECT_EQ(first.best.seq, second.best.seq);
}

// --- sessions ---------------------------------------------------------------

SessionConfig quick_config(std::uint64_t seed, bool warm = true) {
  SessionConfig config;
  config.solver = "engine=simple pop=32";
  config.replan_generations = 12;
  config.seed = seed;
  config.warm.enabled = warm;
  return config;
}

TEST(Session, AnytimeInvariantHoldsAcrossATrace) {
  const sched::JobShopInstance inst = ga::resolve_job_shop_instance("ft06");
  Session session(inst, quick_config(3), 1);
  const EventReply opened = session.open();
  EXPECT_EQ(opened.index, 0);
  EXPECT_LE(opened.best, opened.baseline);

  for (const Event& event : random_trace(inst, 6, 21)) {
    const EventReply reply = session.apply(event);
    // The committed answer never regresses past right-shift repair, and
    // the session's view agrees with the reply.
    EXPECT_LE(reply.best, reply.baseline);
    EXPECT_EQ(reply.best, session.best_objective());
    EXPECT_EQ(reply.plan_hash, session.plan_hash());
    EXPECT_EQ(session.plan().size(), reply.frozen + reply.remaining);
  }
  EXPECT_EQ(session.events(), 7);
}

TEST(Session, ApplyRejectsTimeTravelAndUnopenedSessions) {
  const sched::JobShopInstance inst = ga::resolve_job_shop_instance("ft06");
  Session session(inst, quick_config(3), 1);
  Event event = Event::parse("kind=breakdown time=10 machine=0 duration=5");
  EXPECT_THROW(session.apply(event), std::logic_error);  // before open()
  session.open();
  session.apply(event);
  Event earlier = Event::parse("kind=breakdown time=4 machine=1 duration=5");
  EXPECT_THROW(session.apply(earlier), std::invalid_argument);
}

TEST(Session, TranscriptIsBitIdenticalAcrossRuns) {
  const sched::JobShopInstance inst = ga::resolve_job_shop_instance("ft06");
  const std::vector<Event> trace = random_trace(inst, 8, 11);

  std::string first, second;
  for (std::string* text : {&first, &second}) {
    // Distinct session ids on purpose: identity must not leak into the
    // transcript (the in-process-vs-daemon comparison depends on this).
    Session session(inst, quick_config(7), text == &first ? 1 : 99);
    session.open();
    for (const Event& event : trace) session.apply(event);
    *text = session.transcript_text();
  }
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  EXPECT_EQ(fnv1a(first), fnv1a(second));
  // Timing is excluded by design; determinism would be impossible with it.
  EXPECT_EQ(first.find("seconds"), std::string::npos);
}

/// The ISSUE's acceptance criterion: warm-started replanning reaches the
/// cold-restart reference objective with measurably fewer evaluations.
/// The cold session records, per event, the objective a from-scratch
/// replan achieves under the full budget; the warm session then replays
/// the same trace with each event's stop set to target that reference —
/// carried survivors let it hit the target (or better) well before the
/// budget is spent.
TEST(Session, WarmStartReachesColdReferenceWithFewerEvaluations) {
  const sched::JobShopInstance inst = ga::resolve_job_shop_instance("ft10");
  const std::vector<Event> trace = random_trace(inst, 5, 13);
  const int generations = 30;

  SessionConfig cold_config = quick_config(5, /*warm=*/false);
  cold_config.replan_generations = generations;
  Session cold(inst, cold_config, 1);
  cold.open();
  std::vector<double> reference;
  long long cold_evaluations = 0;
  for (const Event& event : trace) {
    const EventReply reply = cold.apply(event);
    reference.push_back(reply.best);
    cold_evaluations += reply.evaluations;
  }

  SessionConfig warm_config = quick_config(5, /*warm=*/true);
  warm_config.replan_generations = generations;
  Session warm(inst, warm_config, 1);
  warm.open();
  long long warm_evaluations = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    ga::StopCondition stop =
        ga::StopCondition::target(reference[i], generations);
    const EventReply reply = warm.apply(trace[i], stop);
    EXPECT_GT(reply.carried, 0u);
    warm_evaluations += reply.evaluations;
  }
  EXPECT_LT(warm_evaluations, cold_evaluations);
}

// --- the manager ------------------------------------------------------------

TEST(SessionManager, MultiplexedSessionsMatchStandaloneTranscripts) {
  const sched::JobShopInstance inst = ga::resolve_job_shop_instance("ft06");
  const std::vector<Event> trace_a = random_trace(inst, 6, 31);
  const std::vector<Event> trace_b = random_trace(inst, 6, 32);

  SessionManagerConfig manager_config;
  manager_config.workers = 2;
  manager_config.cache.mode = ga::EvalCacheMode::kLru;
  manager_config.cache.capacity = 1 << 14;
  SessionManager manager(manager_config);
  const long long a = manager.open(inst, quick_config(41));
  const long long b = manager.open(inst, quick_config(42));
  EXPECT_EQ(manager.active(), 2);

  // Interleave submissions; FIFO within each session must hold even with
  // two workers and a shared cache racing underneath.
  std::vector<long long> tickets_a, tickets_b;
  for (std::size_t i = 0; i < trace_a.size(); ++i) {
    tickets_a.push_back(manager.submit(a, trace_a[i]));
    tickets_b.push_back(manager.submit(b, trace_b[i]));
  }
  for (std::size_t i = 0; i < tickets_a.size(); ++i) {
    const EventReply reply = manager.wait(a, tickets_a[i]);
    EXPECT_EQ(reply.index, static_cast<int>(i) + 1);
  }
  const SessionManager::CloseResult closed_a = manager.close(a);
  const SessionManager::CloseResult closed_b = manager.close(b);
  EXPECT_EQ(manager.active(), 0);

  // Each multiplexed transcript is bit-identical to a standalone session
  // with no shared cache: neither the manager's scheduling freedom nor
  // cross-session cache sharing may leak into results.
  const auto expect_standalone = [&](const std::vector<Event>& trace,
                                     const SessionManager::CloseResult& closed,
                                     std::uint64_t seed) {
    Session standalone(inst, quick_config(seed), 7);
    standalone.open();
    for (const Event& event : trace) standalone.apply(event);
    EXPECT_EQ(closed.transcript, standalone.transcript_text());
    EXPECT_EQ(closed.transcript_hash, standalone.transcript_hash());
  };
  expect_standalone(trace_a, closed_a, 41);
  expect_standalone(trace_b, closed_b, 42);
}

TEST(SessionManager, WaitRethrowsEventErrorsAndRejectsUnknownSessions) {
  const sched::JobShopInstance inst = ga::resolve_job_shop_instance("ft06");
  SessionManager manager;
  EXPECT_THROW(manager.submit(123, Event{}), std::invalid_argument);
  EXPECT_THROW(manager.best(123), std::invalid_argument);
  EXPECT_THROW(manager.close(123), std::invalid_argument);

  const long long id = manager.open(inst, quick_config(1));
  manager.apply(id, Event::parse("kind=breakdown time=9 machine=0 duration=4"));
  // Time travel fails inside the worker; the error surfaces at wait().
  const long long bad = manager.submit(
      id, Event::parse("kind=breakdown time=2 machine=1 duration=4"));
  EXPECT_THROW(manager.wait(id, bad), std::runtime_error);
  // The session survives a failed event.
  const SessionManager::BestView view = manager.best(id);
  EXPECT_GT(view.best, 0.0);
  manager.close(id);
}

TEST(SessionManager, RecordsActiveGaugeAndEventCounters) {
  const sched::JobShopInstance inst = ga::resolve_job_shop_instance("ft06");
  SessionManager manager;
  const long long id = manager.open(inst, quick_config(1));
  manager.apply(id, Event::parse("kind=breakdown time=9 machine=0 duration=4"));
  const obs::MetricsSnapshot during = manager.metrics()->snapshot();
  ASSERT_NE(during.gauge("session.active"), nullptr);
  EXPECT_EQ(*during.gauge("session.active"), 1);
  manager.close(id);

  const obs::MetricsSnapshot after = manager.metrics()->snapshot();
  EXPECT_EQ(*after.gauge("session.active"), 0);
  EXPECT_EQ(*after.counter("session.opened"), 1u);
  EXPECT_EQ(*after.counter("session.closed"), 1u);
  EXPECT_EQ(*after.counter("session.events"), 1u);
  ASSERT_NE(after.counter("session.replans"), nullptr);
  EXPECT_GE(*after.counter("session.replans"), 1u);
  ASSERT_NE(after.histogram("session.event_latency_ns"), nullptr);
  EXPECT_EQ(after.histogram("session.event_latency_ns")->count, 2u);
}

// --- through the daemon -----------------------------------------------------

/// The tentpole invariant: the same event trace + seed produces a
/// bit-identical session transcript whether the session runs in-process
/// or behind psgad (where it shares a cache with other sessions and runs
/// on manager workers).
TEST(SessionService, DaemonTranscriptMatchesInProcess) {
  const sched::JobShopInstance inst = ga::resolve_job_shop_instance("ft06");
  const std::vector<Event> trace = random_trace(inst, 8, 77);

  Session in_process(inst, quick_config(17), 1);
  in_process.open();
  for (const Event& event : trace) in_process.apply(event);

  svc::ServerConfig server_config;
  server_config.socket_path = temp_socket_path();
  svc::Server server(server_config);
  server.start();
  {
    svc::Client client(server.socket_path());
    svc::SessionOptions options;
    options.solver = quick_config(17).solver;
    options.generations = quick_config(17).replan_generations;
    options.seed = 17;
    const long long id = client.session_open("ft06", options);
    for (const Event& event : trace) {
      const exp::Json reply = client.session_event(id, event.to_json());
      EXPECT_TRUE(reply.find("slo_met")->as_bool());
    }
    const exp::Json best = client.session_best(id);
    EXPECT_EQ(best.find("best")->as_number(), in_process.best_objective());

    const exp::Json closed = client.session_close(id);
    EXPECT_EQ(closed.string_or("transcript", ""),
              in_process.transcript_text());
    EXPECT_EQ(closed.find("transcript_hash")->as_u64(),
              in_process.transcript_hash());
    EXPECT_THROW(client.session_best(id), svc::ServiceError);
  }
  server.stop();
}

TEST(SessionService, OpenRejectsBadInstanceAndSolver) {
  svc::ServerConfig server_config;
  server_config.socket_path = temp_socket_path();
  svc::Server server(server_config);
  server.start();
  {
    svc::Client client(server.socket_path());
    EXPECT_THROW(client.session_open("no-such-instance"), svc::ServiceError);
    svc::SessionOptions options;
    options.solver = "engine=bogus";
    EXPECT_THROW(client.session_open("ft06", options), svc::ServiceError);
    // The failed opens left nothing behind.
    const long long id = client.session_open("ft06");
    client.session_close(id);
  }
  server.stop();
}

}  // namespace
}  // namespace psga::session
