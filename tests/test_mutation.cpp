#include "src/ga/mutation.h"

#include <gtest/gtest.h>

#include <numeric>

#include "src/ga/registry.h"

namespace psga::ga {
namespace {

GenomeTraits perm_traits(int n) {
  GenomeTraits t;
  t.seq_kind = SeqKind::kPermutation;
  t.seq_length = n;
  return t;
}

GenomeTraits rep_traits(std::vector<int> repeats) {
  GenomeTraits t;
  t.seq_kind = SeqKind::kJobRepetition;
  t.repeats = std::move(repeats);
  t.seq_length = 0;
  for (int r : t.repeats) t.seq_length += r;
  return t;
}

Genome perm_genome(const GenomeTraits& traits, par::Rng& rng) {
  Genome g;
  g.seq.resize(static_cast<std::size_t>(traits.seq_length));
  std::iota(g.seq.begin(), g.seq.end(), 0);
  rng.shuffle(g.seq);
  return g;
}

Genome rep_genome(const GenomeTraits& traits, par::Rng& rng) {
  Genome g;
  for (std::size_t j = 0; j < traits.repeats.size(); ++j) {
    for (int k = 0; k < traits.repeats[j]; ++k) {
      g.seq.push_back(static_cast<int>(j));
    }
  }
  rng.shuffle(g.seq);
  return g;
}

class SeqMutationValidity
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(SeqMutationValidity, PermutationStaysValid) {
  const auto& [name, seed] = GetParam();
  const MutationPtr mut = make_mutation(name);
  const GenomeTraits traits = perm_traits(4 + seed % 15);
  par::Rng rng(static_cast<std::uint64_t>(seed) * 31 + 7);
  Genome g = perm_genome(traits, rng);
  for (int round = 0; round < 50; ++round) {
    mut->mutate(g, traits, rng);
    ASSERT_TRUE(genome_valid(g, traits)) << name;
  }
}

TEST_P(SeqMutationValidity, RepetitionStaysValid) {
  const auto& [name, seed] = GetParam();
  const MutationPtr mut = make_mutation(name);
  par::Rng setup(static_cast<std::uint64_t>(seed));
  std::vector<int> repeats;
  for (int j = 0; j < 3 + seed % 4; ++j) repeats.push_back(setup.range(1, 4));
  const GenomeTraits traits = rep_traits(repeats);
  par::Rng rng(static_cast<std::uint64_t>(seed) * 17 + 11);
  Genome g = rep_genome(traits, rng);
  for (int round = 0; round < 50; ++round) {
    mut->mutate(g, traits, rng);
    ASSERT_TRUE(genome_valid(g, traits)) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSeqMutations, SeqMutationValidity,
    ::testing::Combine(::testing::Values("swap", "shift", "inversion",
                                         "scramble"),
                       ::testing::Range(0, 6)));

TEST(Swap, ChangesExactlyTwoPositions) {
  SwapMutation mut;
  const GenomeTraits traits = perm_traits(10);
  par::Rng rng(1);
  const Genome original = perm_genome(traits, rng);
  Genome g = original;
  mut.mutate(g, traits, rng);
  int changed = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    if (g.seq[i] != original.seq[i]) ++changed;
  }
  EXPECT_EQ(changed, 2);
}

TEST(Shift, PreservesRelativeOrderOfOthers) {
  ShiftMutation mut;
  const GenomeTraits traits = perm_traits(10);
  par::Rng rng(2);
  const Genome original = perm_genome(traits, rng);
  Genome g = original;
  mut.mutate(g, traits, rng);
  ASSERT_TRUE(genome_valid(g, traits));
  // Removing the shifted value from both leaves equal subsequences. Find
  // the moved value: the one whose index changed the most.
  // Weaker check: multisets equal (validity) and at least one change.
  EXPECT_NE(g.seq, original.seq);
}

TEST(Mutations, TinyGenomesAreSafe) {
  const GenomeTraits traits = perm_traits(1);
  par::Rng rng(3);
  Genome g;
  g.seq = {0};
  for (const auto& name : sequence_mutation_names()) {
    make_mutation(name)->mutate(g, traits, rng);
    EXPECT_EQ(g.seq, (std::vector<int>{0})) << name;
  }
}

TEST(AssignMutation, StaysInDomainAndChangesValue) {
  AssignMutation mut;
  GenomeTraits traits = perm_traits(3);
  traits.assign_domain = {4, 4, 4};
  Genome g;
  g.seq = {0, 1, 2};
  g.assign = {0, 1, 2};
  par::Rng rng(4);
  for (int round = 0; round < 50; ++round) {
    const Genome before = g;
    mut.mutate(g, traits, rng);
    ASSERT_TRUE(genome_valid(g, traits));
    EXPECT_NE(g.assign, before.assign);  // domain 4 > 1: always changes
  }
}

TEST(AssignMutation, SingleChoiceDomainsUntouched) {
  AssignMutation mut;
  GenomeTraits traits = perm_traits(2);
  traits.assign_domain = {1, 1};
  Genome g;
  g.seq = {0, 1};
  g.assign = {0, 0};
  par::Rng rng(5);
  for (int round = 0; round < 20; ++round) {
    mut.mutate(g, traits, rng);
    EXPECT_EQ(g.assign, (std::vector<int>{0, 0}));
  }
}

TEST(KeyCreep, StaysInUnitInterval) {
  KeyCreepMutation mut(0.5);
  GenomeTraits traits;
  traits.seq_kind = SeqKind::kNone;
  traits.key_length = 5;
  Genome g;
  g.keys = {0.0, 0.25, 0.5, 0.75, 1.0};
  par::Rng rng(6);
  for (int round = 0; round < 200; ++round) {
    mut.mutate(g, traits, rng);
    for (double k : g.keys) {
      ASSERT_GE(k, 0.0);
      ASSERT_LE(k, 1.0);
    }
  }
}

TEST(KeyReset, ChangesOneKey) {
  KeyResetMutation mut;
  GenomeTraits traits;
  traits.seq_kind = SeqKind::kNone;
  traits.key_length = 4;
  Genome g;
  g.keys = {-1.0, -1.0, -1.0, -1.0};  // sentinel values outside U(0,1)
  par::Rng rng(7);
  mut.mutate(g, traits, rng);
  int changed = 0;
  for (double k : g.keys) {
    if (k >= 0.0) ++changed;
  }
  EXPECT_EQ(changed, 1);
}

TEST(Composite, AppliesBoth) {
  auto composite = CompositeMutation(std::make_shared<SwapMutation>(),
                                     std::make_shared<AssignMutation>());
  GenomeTraits traits = perm_traits(6);
  traits.assign_domain = {3, 3, 3, 3, 3, 3};
  Genome g;
  g.seq = {0, 1, 2, 3, 4, 5};
  g.assign = {0, 0, 0, 0, 0, 0};
  par::Rng rng(8);
  const Genome before = g;
  composite.mutate(g, traits, rng);
  EXPECT_NE(g.seq, before.seq);
  EXPECT_NE(g.assign, before.assign);
  EXPECT_EQ(composite.name(), "swap+assign");
}

TEST(Mutations, EmptyChannelsAreNoops) {
  Genome g;  // fully empty genome
  GenomeTraits traits;
  traits.seq_kind = SeqKind::kNone;
  par::Rng rng(9);
  SwapMutation{}.mutate(g, traits, rng);
  KeyCreepMutation{}.mutate(g, traits, rng);
  AssignMutation{}.mutate(g, traits, rng);
  EXPECT_TRUE(g.seq.empty());
  EXPECT_TRUE(g.keys.empty());
  EXPECT_TRUE(g.assign.empty());
}

}  // namespace
}  // namespace psga::ga
