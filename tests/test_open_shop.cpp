#include "src/sched/open_shop.h"

#include <gtest/gtest.h>

#include "src/par/rng.h"
#include "src/sched/generators.h"

namespace psga::sched {
namespace {

/// 2 jobs x 2 machines: p[0] = {3, 2}, p[1] = {2, 4}.
OpenShopInstance tiny() {
  OpenShopInstance inst;
  inst.jobs = 2;
  inst.machines = 2;
  inst.proc = {{3, 2}, {2, 4}};
  return inst;
}

TEST(OpenShop, LowerBound) {
  // Job loads: 5, 6. Machine loads: 5, 6. LB = 6.
  EXPECT_EQ(open_shop_lower_bound(tiny()), 6);
}

TEST(OpenShop, LptTaskDecoderHandCase) {
  const OpenShopInstance inst = tiny();
  // Sequence {0, 1, 0, 1} with LPT-Task:
  //  gene 0 (job 0): longest op is m0 (3): m0 [0,3)
  //  gene 1 (job 1): longest op is m1 (4): m1 [0,4)
  //  gene 2 (job 0): remaining m1 (2): starts max(3,4)=4 -> [4,6)
  //  gene 3 (job 1): remaining m0 (2): starts max(4,3)=4 -> [4,6)
  const std::vector<int> seq = {0, 1, 0, 1};
  const Schedule s = decode_open_shop(inst, seq, OpenShopDecoder::kLptTask);
  EXPECT_EQ(s.makespan(), 6);
  EXPECT_EQ(validate(s, inst.validation_spec()), std::nullopt);
}

TEST(OpenShop, DecodersReachLowerBoundOnTiny) {
  const OpenShopInstance inst = tiny();
  const std::vector<int> seq = {0, 1, 0, 1};
  const Schedule a = decode_open_shop(inst, seq, OpenShopDecoder::kLptTask);
  const Schedule b = decode_open_shop(inst, seq, OpenShopDecoder::kLptMachine);
  EXPECT_EQ(a.makespan(), open_shop_lower_bound(inst));
  EXPECT_GE(b.makespan(), open_shop_lower_bound(inst));
}

class OpenShopDecoderSweep
    : public ::testing::TestWithParam<std::tuple<int, OpenShopDecoder>> {};

TEST_P(OpenShopDecoderSweep, RandomChromosomesFeasible) {
  const auto [seed, decoder] = GetParam();
  par::Rng rng(static_cast<std::uint64_t>(seed));
  const OpenShopInstance inst =
      random_open_shop(4 + seed % 5, 3 + seed % 3,
                       static_cast<std::uint64_t>(seed) * 977 + 1);
  for (int trial = 0; trial < 10; ++trial) {
    const auto seq = random_job_repetition_sequence(inst, rng);
    const Schedule s = decode_open_shop(inst, seq, decoder);
    ASSERT_EQ(validate(s, inst.validation_spec()), std::nullopt);
    EXPECT_GE(s.makespan(), open_shop_lower_bound(inst));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OpenShopDecoderSweep,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values(OpenShopDecoder::kLptTask,
                                         OpenShopDecoder::kLptMachine)));

TEST(OpenShop, GreedyLptFeasibleAndBounded) {
  const OpenShopInstance inst = random_open_shop(8, 4, 42);
  const Schedule s = open_shop_lpt_schedule(inst);
  EXPECT_EQ(validate(s, inst.validation_spec()), std::nullopt);
  EXPECT_GE(s.makespan(), open_shop_lower_bound(inst));
  // Greedy list scheduling is a 2-approximation for open shop makespan.
  EXPECT_LE(s.makespan(), 2 * open_shop_lower_bound(inst));
}

TEST(OpenShop, RandomChromosomeHasMachineCountRepeats) {
  par::Rng rng(9);
  const OpenShopInstance inst = tiny();
  const auto seq = random_job_repetition_sequence(inst, rng);
  ASSERT_EQ(seq.size(), 4u);
  EXPECT_EQ(std::count(seq.begin(), seq.end(), 0), 2);
  EXPECT_EQ(std::count(seq.begin(), seq.end(), 1), 2);
}

TEST(OpenShop, ObjectiveComputesCriteria) {
  OpenShopInstance inst = tiny();
  inst.attrs.due = {5, 5};
  const std::vector<int> seq = {0, 1, 0, 1};
  const Schedule s = decode_open_shop(inst, seq, OpenShopDecoder::kLptTask);
  // completion: j0 = 6, j1 = 6 => Tmax = 1.
  EXPECT_DOUBLE_EQ(open_shop_objective(inst, s, Criterion::kMaxTardiness), 1.0);
}

}  // namespace
}  // namespace psga::sched
