#include "src/sched/classics.h"

#include <gtest/gtest.h>

#include <numeric>

#include "src/par/rng.h"

namespace psga::sched {
namespace {

TEST(Classics, Ft06Shape) {
  const auto& c = ft06();
  EXPECT_STREQ(c.name, "ft06");
  EXPECT_EQ(c.optimum, 55);
  EXPECT_EQ(c.instance.jobs, 6);
  EXPECT_EQ(c.instance.machines, 6);
  for (int j = 0; j < 6; ++j) EXPECT_EQ(c.instance.ops_of(j), 6);
}

TEST(Classics, Ft06KnownTotals) {
  // Published total processing time of ft06 rows.
  const auto& inst = ft06().instance;
  std::vector<Time> totals;
  for (int j = 0; j < 6; ++j) {
    Time t = 0;
    for (int k = 0; k < 6; ++k) t += inst.op(j, k).duration;
    totals.push_back(t);
  }
  EXPECT_EQ(totals, (std::vector<Time>{26, 47, 34, 35, 25, 30}));
}

TEST(Classics, EachJobVisitsEachMachineOnce) {
  for (const ClassicInstance* c : classic_instances()) {
    const auto& inst = c->instance;
    for (int j = 0; j < inst.jobs; ++j) {
      std::vector<int> count(static_cast<std::size_t>(inst.machines), 0);
      for (const auto& op : inst.ops[static_cast<std::size_t>(j)]) {
        ASSERT_GE(op.machine, 0);
        ASSERT_LT(op.machine, inst.machines);
        ++count[static_cast<std::size_t>(op.machine)];
        EXPECT_GT(op.duration, 0);
      }
      for (int cnt : count) {
        EXPECT_EQ(cnt, 1) << c->name << " job " << j;
      }
    }
  }
}

TEST(Classics, OptimumIsLowerBoundForRandomSchedules) {
  par::Rng rng(3);
  for (const ClassicInstance* c : classic_instances()) {
    for (int trial = 0; trial < 5; ++trial) {
      const auto seq = random_operation_sequence(c->instance, rng);
      const Schedule s = decode_operation_based(c->instance, seq);
      EXPECT_GE(s.makespan(), c->optimum) << c->name;
    }
  }
}

TEST(Classics, MachineLoadLowerBoundsDoNotExceedOptimum) {
  for (const ClassicInstance* c : classic_instances()) {
    const auto& inst = c->instance;
    std::vector<Time> machine_load(static_cast<std::size_t>(inst.machines), 0);
    for (int j = 0; j < inst.jobs; ++j) {
      for (const auto& op : inst.ops[static_cast<std::size_t>(j)]) {
        machine_load[static_cast<std::size_t>(op.machine)] += op.duration;
      }
    }
    const Time lb =
        *std::max_element(machine_load.begin(), machine_load.end());
    EXPECT_LE(lb, c->optimum) << c->name;
  }
}

TEST(Classics, ExpectedRoster) {
  const auto& all = classic_instances();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_STREQ(all[0]->name, "ft06");
  EXPECT_STREQ(all[1]->name, "ft10");
  EXPECT_STREQ(all[2]->name, "ft20");
  EXPECT_STREQ(all[3]->name, "la01");
  EXPECT_EQ(all[1]->optimum, 930);
  EXPECT_EQ(all[2]->optimum, 1165);
  EXPECT_EQ(all[3]->optimum, 666);
}

TEST(Classics, Ft20IsTwentyByFive) {
  EXPECT_EQ(ft20().instance.jobs, 20);
  EXPECT_EQ(ft20().instance.machines, 5);
}

}  // namespace
}  // namespace psga::sched
