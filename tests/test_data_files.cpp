// The shipped data/ directory must stay in sync with the embedded
// instances and the Taillard generator (the files are generated from
// them; these tests catch drift).
#include <gtest/gtest.h>

#include "src/sched/classics.h"
#include "src/sched/io.h"
#include "src/sched/taillard.h"

#ifndef PSGA_DATA_DIR
#define PSGA_DATA_DIR "data"
#endif

namespace psga::sched {
namespace {

std::string data_path(const std::string& file) {
  return std::string(PSGA_DATA_DIR) + "/" + file;
}

TEST(DataFiles, ClassicsMatchEmbeddedInstances) {
  for (const ClassicInstance* c : classic_instances()) {
    const JobShopInstance loaded =
        load_job_shop(data_path(std::string(c->name) + ".jsp"));
    ASSERT_EQ(loaded.jobs, c->instance.jobs) << c->name;
    ASSERT_EQ(loaded.machines, c->instance.machines) << c->name;
    for (int j = 0; j < loaded.jobs; ++j) {
      for (int k = 0; k < loaded.ops_of(j); ++k) {
        EXPECT_EQ(loaded.op(j, k).machine, c->instance.op(j, k).machine);
        EXPECT_EQ(loaded.op(j, k).duration, c->instance.op(j, k).duration);
      }
    }
  }
}

TEST(DataFiles, TaillardFilesMatchGenerator) {
  for (const TaillardBenchmark& bench : taillard_20x5()) {
    const FlowShopInstance loaded =
        load_flow_shop(data_path(std::string(bench.name) + ".fsp"));
    const FlowShopInstance generated = make_taillard(bench);
    EXPECT_EQ(loaded.proc, generated.proc) << bench.name;
  }
}

TEST(DataFiles, LoadedInstanceIsSolvable) {
  const JobShopInstance ft = load_job_shop(data_path("ft06.jsp"));
  par::Rng rng(1);
  const auto seq = random_operation_sequence(ft, rng);
  const Schedule s = decode_operation_based(ft, seq);
  EXPECT_EQ(validate(s, ft.validation_spec()), std::nullopt);
  EXPECT_GE(s.makespan(), 55);
}

}  // namespace
}  // namespace psga::sched
