// Tests for the survey's INDIRECT job-shop encoding (Section III.A): a
// chromosome of dispatching-rule ids resolved by Giffler–Thompson.
#include <gtest/gtest.h>

#include "src/ga/problems.h"
#include "src/ga/simple_ga.h"
#include "src/par/rng.h"
#include "src/sched/classics.h"
#include "src/sched/heuristics.h"

namespace psga::ga {
namespace {

TEST(RuleDecode, AllConstantRuleChromosomesMatchPlainGt) {
  // A chromosome of all-SPT must equal giffler_thompson with kSpt, etc.
  const auto& inst = sched::ft06().instance;
  par::Rng rng(1);
  const std::vector<sched::PriorityRule> rules = {
      sched::PriorityRule::kSpt, sched::PriorityRule::kLpt,
      sched::PriorityRule::kMostWorkRemaining, sched::PriorityRule::kFcfs};
  for (int r = 0; r < 4; ++r) {
    const std::vector<int> chromosome(36, r);
    const sched::Schedule via_rules =
        sched::giffler_thompson_rules(inst, chromosome);
    const sched::Schedule direct =
        sched::giffler_thompson(inst, rules[static_cast<std::size_t>(r)], rng);
    EXPECT_EQ(via_rules.makespan(), direct.makespan()) << "rule " << r;
  }
}

TEST(RuleDecode, SchedulesAreFeasibleAndActive) {
  const auto& inst = sched::ft10().instance;
  par::Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<int> chromosome(100);
    for (auto& g : chromosome) g = rng.range(0, 3);
    const sched::Schedule s = sched::giffler_thompson_rules(inst, chromosome);
    ASSERT_EQ(validate(s, inst.validation_spec()), std::nullopt);
    EXPECT_GE(s.makespan(), sched::ft10().optimum);
  }
}

TEST(RuleDecode, OutOfRangeRuleIdsWrapSafely) {
  const auto& inst = sched::ft06().instance;
  const std::vector<int> chromosome(36, 7);  // 7 % 4 == 3 (FCFS)
  const sched::Schedule a = sched::giffler_thompson_rules(inst, chromosome);
  const std::vector<int> fcfs(36, 3);
  const sched::Schedule b = sched::giffler_thompson_rules(inst, fcfs);
  EXPECT_EQ(a.makespan(), b.makespan());
}

TEST(RuleDecode, ShortChromosomePadsWithSpt) {
  const auto& inst = sched::ft06().instance;
  const std::vector<int> half(18, 1);
  const sched::Schedule s = sched::giffler_thompson_rules(inst, half);
  EXPECT_EQ(validate(s, inst.validation_spec()), std::nullopt);
}

TEST(RuleSequenceProblem, TraitsAndRandomGenomes) {
  RuleSequenceJobShopProblem problem(sched::ft06().instance);
  EXPECT_EQ(problem.traits().seq_kind, SeqKind::kNone);
  EXPECT_EQ(problem.traits().assign_domain.size(), 36u);
  par::Rng rng(3);
  for (int t = 0; t < 10; ++t) {
    const Genome g = problem.random_genome(rng);
    EXPECT_TRUE(genome_valid(g, problem.traits()));
    EXPECT_GE(problem.objective(g), 55.0);
  }
}

TEST(RuleSequenceProblem, GaEvolvesRuleSequences) {
  auto problem =
      std::make_shared<RuleSequenceJobShopProblem>(sched::ft10().instance);
  GaConfig cfg;
  cfg.population = 40;
  cfg.termination.max_generations = 40;
  cfg.ops.selection = std::make_shared<TournamentSelection>(2);
  cfg.ops.crossover = std::make_shared<UniformKeyCrossover>();  // aux-mix
  cfg.ops.mutation = std::make_shared<AssignMutation>();
  SimpleGa engine(problem, cfg);
  const GaResult result = engine.run();
  EXPECT_LE(result.best_objective, result.history.front());
  EXPECT_TRUE(genome_valid(result.best, problem->traits()));
  // Evolved rule mixes should at least match the best single rule.
  const sched::Time best_single =
      sched::best_dispatch_makespan(sched::ft10().instance);
  EXPECT_LE(result.best_objective, static_cast<double>(best_single));
}

TEST(RuleSequenceProblem, DecodeExposesSchedule) {
  RuleSequenceJobShopProblem problem(sched::ft06().instance);
  par::Rng rng(4);
  const Genome g = problem.random_genome(rng);
  const sched::Schedule s = problem.decode(g);
  EXPECT_DOUBLE_EQ(static_cast<double>(s.makespan()), problem.objective(g));
}

}  // namespace
}  // namespace psga::ga
