// The solver service lockdown: an in-process psgad server core over a
// temp Unix socket, driven through the same svc::Client that psgactl
// uses. Covers the submit round trip (daemon result ≡ in-process
// Solver, bit-identical), admission control, cancel mid-run,
// drain-with-queued-jobs, malformed-request structured errors,
// concurrent clients, watch streaming, priority scheduling and config
// reload. Lives in the pipeline test binary so the ci.sh ASan/UBSan leg
// races the whole server (workers + connection threads + watchers).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "src/exp/aggregate.h"
#include "src/exp/sweep_runner.h"
#include "src/exp/sweep_spec.h"
#include "src/exp/telemetry.h"
#include "src/ga/solver.h"
#include "src/svc/client.h"
#include "src/svc/dispatch.h"
#include "src/svc/job_table.h"
#include "src/svc/server.h"
#include "src/svc/socket.h"

namespace psga::svc {
namespace {

using exp::Json;

std::string temp_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/psga_svc_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

/// Spins until the job leaves the queued state (the submit → running
/// handoff is asynchronous). The job itself is deterministic; only this
/// transition needs polling.
JobRecord await_running(Client& client, long long id) {
  for (;;) {
    const JobRecord job = client.status(id);
    if (job.state != JobState::kQueued) return job;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

/// A job sized to still be running when the test reacts: enough
/// generations that it cannot finish early, small enough per-generation
/// cost that cancellation lands promptly. The 120 s wall-clock cap is a
/// safety net for a cancellation path regression — no test waits for it.
constexpr const char* kLongSpec =
    "problem=flowshop instance=ta001 engine=simple pop=8 seed=1";

ServerConfig test_config() {
  ServerConfig config;
  config.socket_path = temp_socket_path();
  config.max_seconds = 120.0;
  return config;
}

SubmitOptions long_budget() {
  SubmitOptions options;
  options.generations = 50'000'000;
  return options;
}

// --- round trip -------------------------------------------------------------

TEST(Service, SubmitRoundTripMatchesInProcessSolver) {
  const std::string spec =
      "problem=flowshop instance=ta001 engine=island islands=4 pop=12 "
      "eval=async_pool seed=42";
  const ga::StopCondition stop = ga::StopCondition::generations(12);
  const ga::RunResult direct =
      ga::Solver::build(ga::RunSpec::parse(spec)).run(stop);

  ServerConfig config = test_config();
  Server server(config);
  server.start();
  {
    Client client(config.socket_path);
    SubmitOptions options;
    options.generations = 12;
    const long long id = client.submit(spec, options);
    const JobRecord job = client.wait(id);
    EXPECT_EQ(job.state, JobState::kDone);
    // Bit-identical: the daemon runs the same spec through the same
    // Solver facade — not approximately equal, exactly equal.
    EXPECT_EQ(job.best_objective, direct.best_objective);
    EXPECT_EQ(job.evaluations, direct.evaluations);
    EXPECT_EQ(job.generations, direct.generations);
    // The canonical spec round-trips into the job record.
    EXPECT_EQ(job.spec, ga::RunSpec::parse(spec).to_string());
  }
  server.stop();
}

TEST(Service, JobShopSpecRoundTripsToo) {
  const std::string spec =
      "problem=jobshop instance=ft06 engine=simple pop=16 seed=7";
  const ga::StopCondition stop = ga::StopCondition::generations(8);
  const ga::RunResult direct =
      ga::Solver::build(ga::RunSpec::parse(spec)).run(stop);

  ServerConfig config = test_config();
  Server server(config);
  server.start();
  {
    Client client(config.socket_path);
    SubmitOptions options;
    options.generations = 8;
    const JobRecord job = client.wait(client.submit(spec, options));
    EXPECT_EQ(job.state, JobState::kDone);
    EXPECT_EQ(job.best_objective, direct.best_objective);
    EXPECT_EQ(job.evaluations, direct.evaluations);
  }
  server.stop();
}

// --- admission control ------------------------------------------------------

TEST(Service, AdmissionLimitRejectsWhenQueueIsFull) {
  ServerConfig config = test_config();
  config.workers = 1;
  config.max_queued = 1;
  Server server(config);
  server.start();
  {
    Client client(config.socket_path);
    const long long running = client.submit(kLongSpec, long_budget());
    await_running(client, running);
    const long long queued = client.submit(kLongSpec, long_budget());
    // Queue holds one job; the next submit must be rejected with a
    // structured error, not a dropped connection.
    try {
      client.submit(kLongSpec, long_budget());
      FAIL() << "third submit should have been rejected";
    } catch (const ServiceError& e) {
      EXPECT_NE(std::string(e.what()).find("queue full"), std::string::npos)
          << e.what();
    }
    // The connection survives the rejection.
    client.ping();
    client.cancel(queued);
    client.cancel(running);
    EXPECT_EQ(client.wait(running).state, JobState::kCancelled);
  }
  server.stop();
}

// --- cancellation -----------------------------------------------------------

TEST(Service, CancelMidRunStopsAtGenerationBoundary) {
  ServerConfig config = test_config();
  config.workers = 1;
  Server server(config);
  server.start();
  {
    Client client(config.socket_path);
    const long long id = client.submit(kLongSpec, long_budget());
    await_running(client, id);
    client.cancel(id);
    const JobRecord job = client.wait(id);
    EXPECT_EQ(job.state, JobState::kCancelled);
    // The engine stopped early (nowhere near the requested budget) but
    // still reports its best-so-far anytime answer.
    EXPECT_LT(job.generations, 50'000'000);
    EXPECT_GT(job.best_objective, 0.0);
    EXPECT_GT(job.evaluations, 0);
  }
  server.stop();
}

TEST(Service, CancelQueuedJobNeverRuns) {
  ServerConfig config = test_config();
  config.workers = 1;
  Server server(config);
  server.start();
  {
    Client client(config.socket_path);
    const long long running = client.submit(kLongSpec, long_budget());
    await_running(client, running);
    const long long queued = client.submit(kLongSpec, long_budget());
    EXPECT_EQ(client.cancel(queued), JobState::kCancelled);
    const JobRecord job = client.status(queued);
    EXPECT_EQ(job.state, JobState::kCancelled);
    EXPECT_EQ(job.evaluations, 0);  // never touched a worker
    client.cancel(running);
    client.wait(running);
  }
  server.stop();
}

// --- drain ------------------------------------------------------------------

TEST(Service, DrainCancelsQueuedFinishesRunning) {
  ServerConfig config = test_config();
  config.workers = 1;
  Server server(config);
  server.start();
  long long first = 0;
  std::vector<long long> rest;
  {
    Client client(config.socket_path);
    SubmitOptions quick;
    quick.generations = 40;
    first = client.submit(
        "problem=flowshop instance=ta001 engine=simple pop=10 seed=3", quick);
    await_running(client, first);
    for (int i = 0; i < 3; ++i) {
      rest.push_back(client.submit(kLongSpec, long_budget()));
    }
    const int cancelled = client.drain();
    EXPECT_EQ(cancelled, 3);
    // Draining rejects new work immediately.
    try {
      client.submit(kLongSpec, long_budget());
      FAIL() << "submit during drain should be rejected";
    } catch (const ServiceError& e) {
      EXPECT_NE(std::string(e.what()).find("draining"), std::string::npos);
    }
  }
  // The drain completes: running job finished, queued jobs cancelled.
  server.wait();
  EXPECT_EQ(server.jobs().snapshot(first).state, JobState::kDone);
  for (const long long id : rest) {
    EXPECT_EQ(server.jobs().snapshot(id).state, JobState::kCancelled);
  }
}

// --- structured errors ------------------------------------------------------

TEST(Service, MalformedRequestsGetStructuredErrors) {
  ServerConfig config = test_config();
  Server server(config);
  server.start();
  {
    // Raw socket: send lines Client would refuse to build.
    Fd fd = unix_connect(config.socket_path);
    LineReader reader(fd.get());
    auto round_trip = [&](const std::string& line) {
      EXPECT_TRUE(write_line(fd.get(), line));
      std::string response;
      EXPECT_TRUE(reader.read_line(response));
      return Json::parse(response);
    };

    Json bad_json = round_trip("this is not json");
    EXPECT_FALSE(bad_json.find("ok")->as_bool());
    EXPECT_FALSE(bad_json.string_or("error", "").empty());

    Json bad_op = round_trip(R"({"op":"explode"})");
    EXPECT_FALSE(bad_op.find("ok")->as_bool());
    EXPECT_NE(bad_op.string_or("error", "").find("explode"),
              std::string::npos);

    Json no_op = round_trip(R"({"hello":"world"})");
    EXPECT_FALSE(no_op.find("ok")->as_bool());

    Json bad_spec = round_trip(
        R"({"op":"submit","spec":"problem=flowshop instance=ta001 engine=warp-drive"})");
    EXPECT_FALSE(bad_spec.find("ok")->as_bool());
    EXPECT_NE(bad_spec.string_or("error", "").find("warp-drive"),
              std::string::npos);

    Json missing_id = round_trip(R"({"op":"status"})");
    EXPECT_FALSE(missing_id.find("ok")->as_bool());

    Json unknown_id = round_trip(R"({"op":"status","id":999})");
    EXPECT_FALSE(unknown_id.find("ok")->as_bool());
    EXPECT_NE(unknown_id.string_or("error", "").find("999"),
              std::string::npos);

    // After all that abuse the connection still serves good requests.
    Json ping = round_trip(R"({"op":"ping"})");
    EXPECT_TRUE(ping.find("ok")->as_bool());
  }
  server.stop();
}

// --- watch ------------------------------------------------------------------

TEST(Service, WatchStreamsTelemetryToJobEnd) {
  const std::string spec =
      "problem=flowshop instance=ta001 engine=simple pop=10 seed=11";
  ServerConfig config = test_config();
  Server server(config);
  server.start();
  {
    Client client(config.socket_path);
    SubmitOptions options;
    options.generations = 20;
    const long long id = client.submit(spec, options);
    std::vector<Json> lines;
    const JobRecord job =
        client.watch(id, [&](const Json& line) { lines.push_back(line); });
    EXPECT_EQ(job.state, JobState::kDone);
    ASSERT_FALSE(lines.empty());
    // Replay starts at the job's beginning and ends with job_end; every
    // line is schema-stamped and keyed by this job.
    EXPECT_EQ(lines.front().string_or("event", ""), "run_begin");
    EXPECT_EQ(lines.back().string_or("event", ""), "job_end");
    int generations = 0;
    for (const Json& line : lines) {
      ASSERT_NE(line.find("schema_version"), nullptr) << line.dump();
      EXPECT_EQ(line.find("schema_version")->as_i64(),
                exp::kTelemetrySchemaVersion);
      EXPECT_EQ(line.find("job")->as_i64(), id);
      if (line.string_or("event", "") == "generation") ++generations;
    }
    EXPECT_GE(generations, 20);  // every generation streamed (stride 1)
    EXPECT_EQ(lines.back().number_or("best_objective", -1.0),
              job.best_objective);
    EXPECT_TRUE(lines.back().find("ok")->as_bool());
    // A late watcher replays the identical, already-closed log.
    std::vector<Json> replay;
    client.watch(id, [&](const Json& line) { replay.push_back(line); });
    ASSERT_EQ(replay.size(), lines.size());
    for (std::size_t i = 0; i < lines.size(); ++i) {
      EXPECT_EQ(replay[i].dump(), lines[i].dump());
    }
  }
  server.stop();
}

TEST(Service, FailedJobStreamsErrorJobEnd) {
  ServerConfig config = test_config();
  Server server(config);
  server.start();
  {
    Client client(config.socket_path);
    // Parses fine (registry-legal tokens) but fails at run time: the
    // instance does not resolve.
    const long long id = client.submit(
        "problem=flowshop instance=no_such_file.fsp engine=simple pop=8");
    std::vector<Json> lines;
    const JobRecord job =
        client.watch(id, [&](const Json& line) { lines.push_back(line); });
    EXPECT_EQ(job.state, JobState::kFailed);
    EXPECT_FALSE(job.error.empty());
    ASSERT_FALSE(lines.empty());
    const Json& end = lines.back();
    EXPECT_EQ(end.string_or("event", ""), "job_end");
    EXPECT_FALSE(end.find("ok")->as_bool());
    EXPECT_FALSE(end.string_or("error", "").empty());
  }
  server.stop();
}

// --- concurrency ------------------------------------------------------------

TEST(Service, ConcurrentClientsGetIsolatedDeterministicResults) {
  ServerConfig config = test_config();
  config.workers = 3;
  config.max_queued = 64;
  Server server(config);
  server.start();
  // Every seed's expected answer, computed in-process first.
  constexpr int kClients = 8;
  std::vector<double> expected(kClients);
  for (int i = 0; i < kClients; ++i) {
    expected[static_cast<std::size_t>(i)] =
        ga::Solver::build(
                ga::RunSpec::parse("problem=flowshop instance=ta001 "
                                   "engine=simple pop=10 seed=" +
                                   std::to_string(100 + i)))
            .run(ga::StopCondition::generations(10))
            .best_objective;
  }
  std::vector<std::thread> clients;
  std::vector<std::string> failures(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      try {
        Client client(config.socket_path);
        SubmitOptions options;
        options.generations = 10;
        const long long id = client.submit(
            "problem=flowshop instance=ta001 engine=simple pop=10 seed=" +
                std::to_string(100 + i),
            options);
        const JobRecord job = client.wait(id);
        if (job.state != JobState::kDone) {
          failures[static_cast<std::size_t>(i)] =
              std::string("state ") + to_string(job.state);
        } else if (job.best_objective !=
                   expected[static_cast<std::size_t>(i)]) {
          failures[static_cast<std::size_t>(i)] = "objective mismatch";
        }
      } catch (const std::exception& e) {
        failures[static_cast<std::size_t>(i)] = e.what();
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  for (int i = 0; i < kClients; ++i) {
    EXPECT_TRUE(failures[static_cast<std::size_t>(i)].empty())
        << "client " << i << ": " << failures[static_cast<std::size_t>(i)];
  }
  server.stop();
}

// --- job table scheduling ---------------------------------------------------

TEST(JobTableTest, PriorityOrderFifoWithinPriority) {
  JobTable table(16);
  const ga::StopCondition stop;
  const JobPtr low_a = table.submit("spec-low-a", 0, stop);
  const JobPtr high = table.submit("spec-high", 5, stop);
  const JobPtr low_b = table.submit("spec-low-b", 0, stop);
  const JobPtr mid = table.submit("spec-mid", 3, stop);
  EXPECT_EQ(table.next_job(), high);
  EXPECT_EQ(table.next_job(), mid);
  EXPECT_EQ(table.next_job(), low_a);  // FIFO within priority 0
  EXPECT_EQ(table.next_job(), low_b);
}

TEST(JobTableTest, AdmissionAndDrain) {
  JobTable table(2);
  const ga::StopCondition stop;
  table.submit("a", 0, stop);
  table.submit("b", 0, stop);
  EXPECT_THROW(table.submit("c", 0, stop), AdmissionError);
  EXPECT_EQ(table.drain(), 2);
  EXPECT_THROW(table.submit("d", 0, stop), AdmissionError);
  EXPECT_EQ(table.next_job(), nullptr);  // drained: workers exit
}

// --- config -----------------------------------------------------------------

TEST(ServerConfigTest, TokensParseAndUnknownKeysThrow) {
  ServerConfig config;
  config.apply_tokens(
      "workers=4 max_queued=9 max_generations=500 max_seconds=2.5 "
      "max_evaluations=100000 telemetry_every=0 socket=/tmp/x.sock "
      "# trailing comment\n");
  EXPECT_EQ(config.workers, 4);
  EXPECT_EQ(config.max_queued, 9);
  EXPECT_EQ(config.max_generations, 500);
  EXPECT_DOUBLE_EQ(config.max_seconds, 2.5);
  EXPECT_EQ(config.max_evaluations, 100000);
  EXPECT_EQ(config.telemetry_every, 0);
  EXPECT_EQ(config.socket_path, "/tmp/x.sock");
  EXPECT_THROW(config.apply_tokens("warp=9"), std::invalid_argument);
  EXPECT_THROW(config.apply_tokens("workers=lots"), std::invalid_argument);
}

TEST(ServerConfigTest, ClampCapsEveryBudgetAxis) {
  ServerConfig config;
  config.max_generations = 100;
  config.max_seconds = 5.0;
  config.max_evaluations = 1000;
  ga::StopCondition greedy;
  greedy.max_generations = 1'000'000;
  greedy.max_seconds = 3600.0;
  greedy.max_evaluations = 100'000'000;
  const ga::StopCondition clamped = config.clamp(greedy);
  EXPECT_EQ(clamped.max_generations, 100);
  EXPECT_DOUBLE_EQ(clamped.max_seconds, 5.0);
  EXPECT_EQ(clamped.max_evaluations, 1000);
  // A modest request passes through; unset fields inherit the caps.
  ga::StopCondition modest;
  modest.max_generations = 10;
  const ga::StopCondition kept = config.clamp(modest);
  EXPECT_EQ(kept.max_generations, 10);
  EXPECT_DOUBLE_EQ(kept.max_seconds, 5.0);
  EXPECT_EQ(kept.max_evaluations, 1000);
}

TEST(Service, ReloadTightensAdmission) {
  ServerConfig config = test_config();
  config.workers = 1;
  Server server(config);
  server.start();
  {
    Client client(config.socket_path);
    const long long running = client.submit(kLongSpec, long_budget());
    await_running(client, running);
    ServerConfig tightened = config;
    tightened.max_queued = 0;
    server.reload(tightened);
    EXPECT_THROW(client.submit(kLongSpec, long_budget()), ServiceError);
    client.cancel(running);
    client.wait(running);
  }
  server.stop();
}

// --- telemetry schema stamping ----------------------------------------------

TEST(TelemetrySchema, EveryLineCarriesSchemaVersionFirst) {
  std::ostringstream out;
  exp::TelemetrySink sink(out);
  sink.write(Json::object()
                 .set("event", Json::string("generation"))
                 .set("best", Json::number(1.5)));
  const Json line = Json::parse(out.str());
  ASSERT_TRUE(line.is_object());
  ASSERT_FALSE(line.members().empty());
  EXPECT_EQ(line.members().front().first, "schema_version");
  EXPECT_EQ(line.find("schema_version")->as_i64(),
            exp::kTelemetrySchemaVersion);
  // A line that already carries the field is not double-stamped.
  std::ostringstream out2;
  exp::TelemetrySink sink2(out2);
  sink2.write(Json::object()
                  .set("schema_version", Json::integer(1))
                  .set("event", Json::string("x")));
  const Json line2 = Json::parse(out2.str());
  int stamps = 0;
  for (const Json::Member& member : line2.members()) {
    stamps += member.first == "schema_version";
  }
  EXPECT_EQ(stamps, 1);
}

// --- sweep dispatch ---------------------------------------------------------

exp::SweepSpec dispatch_test_sweep() {
  return exp::SweepSpec::parse(
      "problem=flowshop engine=island islands=2 pop=8\n"
      "topology={ring,full}\n"
      "@instances=ta001 @reps=2 @generations=3 @seed=17");
}

/// Cell records keyed by hash with the wall-clock `seconds` stripped —
/// the byte-compatibility unit for dispatched vs in-process telemetry.
std::map<std::string, std::string> cells_sans_seconds(
    const std::string& jsonl) {
  std::map<std::string, std::string> out;
  std::istringstream lines(jsonl);
  std::string line;
  while (std::getline(lines, line)) {
    const Json record = Json::parse(line);
    if (record.string_or("event", "") != "cell") continue;
    Json normalized = Json::object();
    for (const Json::Member& member : record.members()) {
      if (member.first != "seconds") {
        normalized.set(member.first, member.second);
      }
    }
    out[record.string_or("hash", "")] = normalized.dump();
  }
  return out;
}

TEST(Dispatch, MatchesInProcessSweepAcrossJobCounts) {
  // In-process baseline with telemetry.
  std::ostringstream in_process_stream;
  exp::SweepResult in_process;
  {
    exp::TelemetrySink sink(in_process_stream);
    exp::SweepOptions options;
    options.telemetry = &sink;
    in_process = exp::run_sweep(dispatch_test_sweep(), options);
  }
  ASSERT_EQ(in_process.failed, 0);
  const std::string table =
      exp::summary_table(in_process.spec, exp::summarize(in_process))
          .to_string();

  ServerConfig config = test_config();
  config.workers = 2;
  config.max_queued = 64;
  Server server(config);
  server.start();
  for (const int jobs : {1, 4}) {
    std::ostringstream dispatched_stream;
    exp::TelemetrySink sink(dispatched_stream);
    DispatchOptions options;
    options.jobs = jobs;
    options.telemetry = &sink;
    const exp::SweepResult dispatched =
        dispatch_sweep(dispatch_test_sweep(), config.socket_path, options);
    ASSERT_EQ(dispatched.failed, 0) << "jobs=" << jobs;
    ASSERT_EQ(dispatched.cells.size(), in_process.cells.size());
    for (std::size_t i = 0; i < in_process.cells.size(); ++i) {
      // Seeds are baked into the cell specs, so the daemon reproduces
      // the in-process result bit for bit at any parallelism.
      EXPECT_EQ(dispatched.cells[i].result.best_objective,
                in_process.cells[i].result.best_objective)
          << "jobs=" << jobs << " cell " << i;
      EXPECT_EQ(dispatched.cells[i].result.evaluations,
                in_process.cells[i].result.evaluations);
      EXPECT_EQ(dispatched.cells[i].result.problem,
                in_process.cells[i].result.problem);
    }
    EXPECT_EQ(
        exp::summary_table(dispatched.spec, exp::summarize(dispatched))
            .to_string(),
        table)
        << "jobs=" << jobs;
    // Telemetry byte-compatibility: identical cell records mod timing.
    EXPECT_EQ(cells_sans_seconds(dispatched_stream.str()),
              cells_sans_seconds(in_process_stream.str()))
        << "jobs=" << jobs;
  }
  server.stop();
}

TEST(Dispatch, RetriesAcrossDaemonRestart) {
  ServerConfig config = test_config();
  config.workers = 1;
  std::optional<Server> server;
  server.emplace(config);
  server->start();

  DispatchOptions options;
  options.jobs = 1;  // serial: the restart lands between two known cells
  options.attempts = 10;
  options.backoff_ms = 5;
  int restarts = 0;
  options.progress = [&](const exp::CellResult& cell, int done, int total) {
    EXPECT_TRUE(cell.ok) << cell.error;
    if (done == 2) {
      // Kill and recreate the daemon on the same socket: the next
      // cell's connection dies mid-flight and must reconnect + resubmit
      // (a restarted daemon has forgotten every job id).
      server.emplace(config);
      server->start();
      ++restarts;
    }
    (void)total;
  };
  const exp::SweepResult dispatched =
      dispatch_sweep(dispatch_test_sweep(), config.socket_path, options);
  EXPECT_EQ(restarts, 1);
  EXPECT_EQ(dispatched.failed, 0);

  // Bit-identical to the in-process run despite the restart.
  const exp::SweepResult in_process = exp::run_sweep(dispatch_test_sweep());
  for (std::size_t i = 0; i < in_process.cells.size(); ++i) {
    EXPECT_EQ(dispatched.cells[i].result.best_objective,
              in_process.cells[i].result.best_objective)
        << "cell " << i;
  }
  server->stop();
}

TEST(Dispatch, ResumeSkipsFinishedCellsWithoutSubmitting) {
  ServerConfig config = test_config();
  config.workers = 2;
  config.max_queued = 64;

  // First pass: run the full sweep, keep its telemetry.
  std::ostringstream first_stream;
  {
    Server server(config);
    server.start();
    exp::TelemetrySink sink(first_stream);
    DispatchOptions options;
    options.jobs = 2;
    options.telemetry = &sink;
    ASSERT_EQ(
        dispatch_sweep(dispatch_test_sweep(), config.socket_path, options)
            .failed,
        0);
    server.stop();
  }

  // Pretend the run died after 3 cells; resume against a fresh daemon.
  std::string truncated;
  {
    std::istringstream lines(first_stream.str());
    std::string line;
    int cells = 0;
    while (cells < 3 && std::getline(lines, line)) {
      truncated += line + "\n";
      if (Json::parse(line).string_or("event", "") == "cell") ++cells;
    }
  }
  std::istringstream scan_in(truncated);
  const exp::FinishedCells finished = exp::scan_finished_cells(scan_in);
  ASSERT_EQ(finished.size(), 3u);

  ServerConfig fresh = test_config();
  fresh.workers = 2;
  fresh.max_queued = 64;
  Server server(fresh);
  server.start();
  std::ostringstream resumed_stream;
  exp::TelemetrySink sink(resumed_stream);
  DispatchOptions options;
  options.jobs = 2;
  options.telemetry = &sink;
  options.resume = &finished;
  const exp::SweepResult resumed =
      dispatch_sweep(dispatch_test_sweep(), fresh.socket_path, options);
  EXPECT_EQ(resumed.failed, 0);
  int resumed_cells = 0;
  for (const exp::CellResult& cell : resumed.cells) {
    resumed_cells += cell.resumed;
  }
  EXPECT_EQ(resumed_cells, 3);
  // Finished cells were never submitted: the fresh daemon saw only the
  // remaining jobs.
  Client client(fresh.socket_path);
  EXPECT_EQ(client.list().size(), resumed.cells.size() - 3);
  // The union is the uninterrupted telemetry (mod timing).
  EXPECT_EQ(cells_sans_seconds(truncated + resumed_stream.str()),
            cells_sans_seconds(first_stream.str()));
  server.stop();
}

TEST(Dispatch, QueueFullBacksOffUntilAdmitted) {
  // A tiny admission window (1 worker, 1 queued) against 4 concurrent
  // dispatch lanes: submits bounce with "queue full" and must back off
  // and retry instead of failing the cell.
  ServerConfig config = test_config();
  config.workers = 1;
  config.max_queued = 1;
  Server server(config);
  server.start();
  DispatchOptions options;
  options.jobs = 4;
  options.attempts = 200;
  options.backoff_ms = 1;
  const exp::SweepResult dispatched =
      dispatch_sweep(dispatch_test_sweep(), config.socket_path, options);
  EXPECT_EQ(dispatched.failed, 0);
  server.stop();
}

TEST(Dispatch, UnreachableDaemonFailsSoftWithoutCellRecords) {
  std::ostringstream stream;
  exp::TelemetrySink sink(stream);
  DispatchOptions options;
  options.telemetry = &sink;
  options.attempts = 2;
  options.backoff_ms = 1;
  const exp::SweepResult dispatched = dispatch_sweep(
      dispatch_test_sweep(), temp_socket_path(), options);
  // Every cell fails soft in-memory...
  EXPECT_EQ(dispatched.failed, static_cast<int>(dispatched.cells.size()));
  for (const exp::CellResult& cell : dispatched.cells) {
    EXPECT_NE(cell.error.find("dispatch:"), std::string::npos) << cell.error;
  }
  // ...but writes no cell records: an outage is environmental, and a
  // later --resume must re-run these cells rather than trust it.
  EXPECT_TRUE(cells_sans_seconds(stream.str()).empty());
  std::istringstream lines(stream.str());
  std::string line;
  bool saw_begin = false;
  while (std::getline(lines, line)) {
    const std::string event = Json::parse(line).string_or("event", "");
    EXPECT_NE(event, "cell");
    saw_begin = saw_begin || event == "sweep_begin";
  }
  EXPECT_TRUE(saw_begin);
}

TEST(Dispatch, ConnectFailureIsATransportError) {
  // The fault taxonomy the retry loop keys on: a dead socket is a
  // TransportError (retryable), still catchable as ServiceError.
  EXPECT_THROW(Client client(temp_socket_path()), TransportError);
  try {
    Client client(temp_socket_path());
  } catch (const ServiceError&) {
    SUCCEED();
  }
}

}  // namespace
}  // namespace psga::svc
