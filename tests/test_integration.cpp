// Cross-module integration tests: full engine runs on classic instances,
// checking that the library converges to sensible neighbourhoods of the
// known optima within small budgets.
#include <gtest/gtest.h>

#include "src/ga/island_ga.h"
#include "src/ga/master_slave_ga.h"
#include "src/ga/problems.h"
#include "src/ga/simple_ga.h"
#include "src/sched/classics.h"
#include "src/sched/heuristics.h"
#include "src/sched/taillard.h"

namespace psga::ga {
namespace {

TEST(Integration, IslandGaGetsCloseToFt06Optimum) {
  auto problem = std::make_shared<JobShopProblem>(
      sched::ft06().instance, JobShopProblem::Decoder::kGifflerThompson);
  IslandGaConfig cfg;
  cfg.islands = 4;
  cfg.base.population = 40;
  cfg.base.termination.max_generations = 60;
  cfg.base.seed = 7;
  cfg.migration.interval = 5;
  IslandGa ga(problem, cfg);
  const RunResult result = ga.run();
  // ft06 optimum is 55; the GT-decoded island GA should land within 10%.
  EXPECT_GE(result.best_objective, 55.0);
  EXPECT_LE(result.best_objective, 60.5);
}

TEST(Integration, SimpleGaBeatsNehGivenTime) {
  // On ta001 a modest GA seeded purely at random should at least approach
  // NEH; with a decent budget it usually beats it.
  const auto bench = sched::taillard_20x5().front();
  const auto inst = sched::make_taillard(bench);
  auto problem = std::make_shared<FlowShopProblem>(inst);
  GaConfig cfg;
  cfg.population = 80;
  cfg.termination.max_generations = 150;
  cfg.seed = 3;
  SimpleGa ga(problem, cfg);
  const GaResult result = ga.run();
  const double neh = static_cast<double>(sched::neh_makespan(inst));
  EXPECT_LE(result.best_objective, neh * 1.03);
  EXPECT_GE(result.best_objective, static_cast<double>(bench.best_known));
}

TEST(Integration, DecodedScheduleOfGaBestIsFeasible) {
  auto problem = std::make_shared<JobShopProblem>(sched::ft10().instance);
  GaConfig cfg;
  cfg.population = 30;
  cfg.termination.max_generations = 20;
  SimpleGa ga(problem, cfg);
  const GaResult result = ga.run();
  const sched::Schedule schedule = problem->decode(result.best);
  EXPECT_EQ(validate(schedule, problem->instance().validation_spec()),
            std::nullopt);
  EXPECT_DOUBLE_EQ(static_cast<double>(schedule.makespan()),
                   result.best_objective);
}

TEST(Integration, MasterSlaveOnLargeInstanceMatchesSerial) {
  // End-to-end behavioural invariance on a bigger problem (ft20).
  auto problem = std::make_shared<JobShopProblem>(sched::ft20().instance);
  GaConfig cfg;
  cfg.population = 40;
  cfg.termination.max_generations = 15;
  cfg.seed = 99;
  SimpleGa serial(problem, cfg);
  par::ThreadPool pool(8);
  MasterSlaveGa parallel(problem, cfg, &pool);
  const GaResult rs = serial.run();
  const GaResult rp = parallel.run();
  EXPECT_EQ(rs.history, rp.history);
  EXPECT_EQ(rs.best.seq, rp.best.seq);
}

TEST(Integration, AllEnginesAgreeOnObjectiveSemantics) {
  // Same problem, different engines: every reported best objective must
  // be reproducible by re-evaluating the reported best genome.
  auto problem = std::make_shared<FlowShopProblem>(
      sched::make_taillard(sched::taillard_20x5()[1]));
  GaConfig cfg;
  cfg.population = 24;
  cfg.termination.max_generations = 15;

  SimpleGa simple(problem, cfg);
  const GaResult r1 = simple.run();
  EXPECT_DOUBLE_EQ(problem->objective(r1.best), r1.best_objective);

  IslandGaConfig icfg;
  icfg.islands = 3;
  icfg.base = cfg;
  IslandGa island(problem, icfg);
  const RunResult r2 = island.run();
  EXPECT_DOUBLE_EQ(problem->objective(r2.best),
                   r2.best_objective);
}

}  // namespace
}  // namespace psga::ga
