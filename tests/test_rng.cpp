#include "src/par/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

namespace psga::par {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, BelowIsInRangeAndCoversAll) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(19);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.range(3, 5);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(29);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(31);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, SplitStreamsAreIndependentOfParentDraws) {
  // The child stream depends on the parent's identity, not on how many
  // numbers the parent has drawn.
  Rng parent1(99);
  Rng parent2(99);
  (void)parent2();
  (void)parent2();
  Rng child1 = parent1.split(5);
  Rng child2 = parent2.split(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child1(), child2());
}

TEST(Rng, SplitDifferentIdsDiffer) {
  Rng parent(99);
  Rng a = parent.split(1);
  Rng b = parent.split(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, NestedSplitsDiffer) {
  Rng root(1234);
  Rng a = root.split(0).split(0);
  Rng b = root.split(0).split(1);
  Rng c = root.split(1).split(0);
  EXPECT_NE(a(), b());
  EXPECT_NE(a(), c());
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(37);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), shuffled.begin()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(v, shuffled);
}

TEST(Rng, ShuffleUniformFirstElement) {
  // Rough uniformity: each of 5 values lands in slot 0 about 1/5 of runs.
  std::vector<int> counts(5, 0);
  Rng rng(41);
  for (int trial = 0; trial < 5000; ++trial) {
    std::vector<int> v = {0, 1, 2, 3, 4};
    rng.shuffle(v);
    ++counts[static_cast<std::size_t>(v[0])];
  }
  for (int c : counts) EXPECT_NEAR(c / 5000.0, 0.2, 0.04);
}

TEST(Splitmix, KnownGolden) {
  // SplitMix64 reference value for state 0 (first output).
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xe220a8397b1dcdafULL);
}

}  // namespace
}  // namespace psga::par
