#include "src/sched/energy.h"

#include <gtest/gtest.h>

#include <numeric>

#include "src/ga/problems.h"
#include "src/ga/simple_ga.h"
#include "src/sched/taillard.h"

namespace psga::sched {
namespace {

TEST(EnergyReport, HandComputedTotals) {
  // Machine 0: ops [0,10) and [15,20) -> busy 15, idle 5.
  // Machine 1: op [5,10) -> busy 5, idle 0.
  Schedule s;
  s.ops = {
      {0, 0, 0, 0, 10},
      {1, 0, 1, 5, 10},
      {2, 0, 0, 15, 20},
  };
  const std::vector<PowerProfile> profiles = {{10.0, 2.0}, {4.0, 1.0}};
  const EnergyReport r = energy_report(s, profiles);
  EXPECT_DOUBLE_EQ(r.processing_energy, 15 * 10.0 + 5 * 4.0);
  EXPECT_DOUBLE_EQ(r.idle_energy, 5 * 2.0);
  EXPECT_DOUBLE_EQ(r.total_energy(), 170.0 + 10.0);
  // Peak: both machines busy during [5,10): 10 + 4.
  EXPECT_DOUBLE_EQ(r.peak_power, 14.0);
}

TEST(EnergyReport, EmptyScheduleIsZero) {
  const EnergyReport r = energy_report(Schedule{}, {});
  EXPECT_DOUBLE_EQ(r.total_energy(), 0.0);
  EXPECT_DOUBLE_EQ(r.peak_power, 0.0);
}

TEST(EnergyReport, AdjacentOpsDoNotDoublePeak) {
  // Two back-to-back ops on one machine: peak = one op's power.
  Schedule s;
  s.ops = {
      {0, 0, 0, 0, 10},
      {1, 0, 0, 10, 20},
  };
  const std::vector<PowerProfile> profiles = {{7.0, 1.0}};
  EXPECT_DOUBLE_EQ(energy_report(s, profiles).peak_power, 7.0);
}

TEST(EnergyAwareFlowShop, PureMakespanWeightsMatchPlainObjective) {
  const FlowShopInstance inst = taillard_flow_shop(10, 4, 77);
  EnergyAwareFlowShop shop(inst, random_power_profiles(4, 5), {1.0, 0.0, 0.0});
  std::vector<int> perm(10);
  std::iota(perm.begin(), perm.end(), 0);
  EXPECT_DOUBLE_EQ(shop.objective(perm),
                   static_cast<double>(flow_shop_makespan(inst, perm)));
}

TEST(EnergyAwareFlowShop, ProcessingEnergyIsSequenceInvariant) {
  // Total processing energy depends only on the work content, not the
  // order; only idle energy and peak vary with the permutation.
  const FlowShopInstance inst = taillard_flow_shop(8, 3, 78);
  EnergyAwareFlowShop shop(inst, random_power_profiles(3, 6), {0.0, 1.0, 0.0});
  std::vector<int> a(8);
  std::iota(a.begin(), a.end(), 0);
  std::vector<int> b(a.rbegin(), a.rend());
  EXPECT_DOUBLE_EQ(shop.report(a).processing_energy,
                   shop.report(b).processing_energy);
}

TEST(EnergyAwareFlowShop, GaReducesEnergyObjective) {
  const FlowShopInstance inst = taillard_flow_shop(15, 5, 79);
  ga::EnergyFlowShopProblem problem(
      EnergyAwareFlowShop(inst, random_power_profiles(5, 7),
                          {1.0, 0.05, 0.5}));
  auto shared = std::make_shared<ga::EnergyFlowShopProblem>(problem);
  ga::GaConfig cfg;
  cfg.population = 40;
  cfg.termination.max_generations = 40;
  ga::SimpleGa engine(shared, cfg);
  const ga::GaResult result = engine.run();
  EXPECT_LT(result.best_objective, result.history.front());
  EXPECT_TRUE(genome_valid(result.best, shared->traits()));
}

TEST(EnergyAwareFlowShop, WeightsTradeOffMakespanVsPeak) {
  // Optimizing peak power only should find a permutation with peak no
  // higher than the makespan-only optimum's peak.
  const FlowShopInstance inst = taillard_flow_shop(12, 4, 80);
  const auto profiles = random_power_profiles(4, 8);
  auto run = [&](EnergyObjectiveWeights weights, std::uint64_t seed) {
    auto problem = std::make_shared<ga::EnergyFlowShopProblem>(
        EnergyAwareFlowShop(inst, profiles, weights));
    ga::GaConfig cfg;
    cfg.population = 40;
    cfg.termination.max_generations = 60;
    cfg.seed = seed;
    ga::SimpleGa engine(problem, cfg);
    const ga::GaResult r = engine.run();
    EnergyAwareFlowShop shop(inst, profiles, weights);
    return shop.report(r.best.seq).peak_power;
  };
  const double peak_when_minimizing_makespan = run({1.0, 0.0, 0.0}, 3);
  const double peak_when_minimizing_peak = run({0.0, 0.0, 1.0}, 3);
  EXPECT_LE(peak_when_minimizing_peak, peak_when_minimizing_makespan + 1e-9);
}

TEST(PowerProfiles, DeterministicAndInRange) {
  const auto a = random_power_profiles(6, 42, 5, 20, 0.5, 4);
  const auto b = random_power_profiles(6, 42, 5, 20, 0.5, 4);
  ASSERT_EQ(a.size(), 6u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].processing, b[i].processing);
    EXPECT_GE(a[i].processing, 5.0);
    EXPECT_LE(a[i].processing, 20.0);
    EXPECT_GE(a[i].idle, 0.5);
    EXPECT_LE(a[i].idle, 4.0);
  }
}

}  // namespace
}  // namespace psga::sched
