// Property sweep: every registry crossover must keep the AUXILIARY genome
// channels valid — assignment values inside their per-position domains
// and key values a blend/selection of the parents' keys. The flexible
// shops depend on this (their genomes carry sequencing + assignment, lot
// streaming carries sequencing + keys).
#include <gtest/gtest.h>

#include <numeric>

#include "src/ga/registry.h"

namespace psga::ga {
namespace {

GenomeTraits traits_with_channels(int n, bool assign, bool keys) {
  GenomeTraits t;
  t.seq_kind = SeqKind::kPermutation;
  t.seq_length = n;
  if (assign) {
    for (int i = 0; i < n; ++i) t.assign_domain.push_back(2 + i % 3);
  }
  if (keys) t.key_length = n;
  return t;
}

Genome random_genome(const GenomeTraits& traits, par::Rng& rng) {
  Genome g;
  g.seq.resize(static_cast<std::size_t>(traits.seq_length));
  std::iota(g.seq.begin(), g.seq.end(), 0);
  rng.shuffle(g.seq);
  for (int d : traits.assign_domain) {
    g.assign.push_back(static_cast<int>(rng.below(static_cast<std::uint64_t>(d))));
  }
  for (int i = 0; i < traits.key_length; ++i) g.keys.push_back(rng.uniform());
  return g;
}

class AuxChannelSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(AuxChannelSweep, AssignChannelStaysInDomainAndFromParents) {
  const CrossoverPtr cx = make_crossover(GetParam());
  if (!cx->supports(SeqKind::kPermutation)) GTEST_SKIP();
  const GenomeTraits traits = traits_with_channels(12, true, false);
  par::Rng rng(101);
  for (int trial = 0; trial < 30; ++trial) {
    const Genome a = random_genome(traits, rng);
    const Genome b = random_genome(traits, rng);
    Genome c1;
    Genome c2;
    cx->cross(a, b, traits, c1, c2, rng);
    ASSERT_TRUE(genome_valid(c1, traits)) << GetParam();
    ASSERT_TRUE(genome_valid(c2, traits)) << GetParam();
    for (std::size_t i = 0; i < c1.assign.size(); ++i) {
      EXPECT_TRUE(c1.assign[i] == a.assign[i] || c1.assign[i] == b.assign[i]);
      // Complementary: what child1 did not take, child2 holds.
      EXPECT_TRUE(c2.assign[i] == a.assign[i] || c2.assign[i] == b.assign[i]);
    }
  }
}

TEST_P(AuxChannelSweep, KeyChannelStaysInParentRange) {
  const CrossoverPtr cx = make_crossover(GetParam());
  if (!cx->supports(SeqKind::kPermutation)) GTEST_SKIP();
  const GenomeTraits traits = traits_with_channels(10, false, true);
  par::Rng rng(102);
  for (int trial = 0; trial < 30; ++trial) {
    const Genome a = random_genome(traits, rng);
    const Genome b = random_genome(traits, rng);
    Genome c1;
    Genome c2;
    cx->cross(a, b, traits, c1, c2, rng);
    ASSERT_TRUE(genome_valid(c1, traits)) << GetParam();
    for (std::size_t i = 0; i < c1.keys.size(); ++i) {
      const double lo = std::min(a.keys[i], b.keys[i]) - 1e-12;
      const double hi = std::max(a.keys[i], b.keys[i]) + 1e-12;
      EXPECT_GE(c1.keys[i], lo) << GetParam();
      EXPECT_LE(c1.keys[i], hi) << GetParam();
    }
  }
}

TEST_P(AuxChannelSweep, BothChannelsTogether) {
  const CrossoverPtr cx = make_crossover(GetParam());
  if (!cx->supports(SeqKind::kPermutation)) GTEST_SKIP();
  const GenomeTraits traits = traits_with_channels(8, true, true);
  par::Rng rng(103);
  for (int trial = 0; trial < 20; ++trial) {
    const Genome a = random_genome(traits, rng);
    const Genome b = random_genome(traits, rng);
    Genome c1;
    Genome c2;
    cx->cross(a, b, traits, c1, c2, rng);
    ASSERT_TRUE(genome_valid(c1, traits)) << GetParam();
    ASSERT_TRUE(genome_valid(c2, traits)) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(AllCrossovers, AuxChannelSweep,
                         ::testing::Values("one-point", "two-point", "pmx",
                                           "ox", "cycle", "position-based",
                                           "jox", "ppx", "thx"));

TEST(AuxChannels, KeyCrossoversPreserveAssignDomains) {
  // The pure key crossovers must also recombine assign within domains
  // (the rule-sequence encoding uses exactly this combination).
  GenomeTraits traits;
  traits.seq_kind = SeqKind::kNone;
  traits.key_length = 6;
  traits.assign_domain = {4, 4, 4, 4, 4, 4};
  par::Rng rng(104);
  for (const char* name : {"uniform-keys", "arithmetic-keys"}) {
    const CrossoverPtr cx = make_crossover(name);
    for (int trial = 0; trial < 20; ++trial) {
      Genome a;
      Genome b;
      for (int i = 0; i < 6; ++i) {
        a.keys.push_back(rng.uniform());
        b.keys.push_back(rng.uniform());
        a.assign.push_back(rng.range(0, 3));
        b.assign.push_back(rng.range(0, 3));
      }
      Genome c1;
      Genome c2;
      cx->cross(a, b, traits, c1, c2, rng);
      ASSERT_TRUE(genome_valid(c1, traits)) << name;
      ASSERT_TRUE(genome_valid(c2, traits)) << name;
      for (std::size_t i = 0; i < 6; ++i) {
        EXPECT_TRUE(c1.assign[i] == a.assign[i] || c1.assign[i] == b.assign[i]);
      }
    }
  }
}

}  // namespace
}  // namespace psga::ga
