#include "src/sched/flexible_job_shop.h"

#include <gtest/gtest.h>

#include "src/par/rng.h"
#include "src/sched/generators.h"

namespace psga::sched {
namespace {

/// 2 jobs, 2 machines; every op eligible on both machines.
/// Job 0: op0 {m0: 3, m1: 5}, op1 {m0: 2, m1: 2}.
/// Job 1: op0 {m0: 4, m1: 1}.
FlexibleJobShopInstance tiny() {
  FlexibleJobShopInstance inst;
  inst.jobs = 2;
  inst.machines = 2;
  inst.ops.resize(2);
  inst.ops[0].resize(2);
  inst.ops[0][0].choices = {{0, 3}, {1, 5}};
  inst.ops[0][1].choices = {{0, 2}, {1, 2}};
  inst.ops[1].resize(1);
  inst.ops[1][0].choices = {{0, 4}, {1, 1}};
  return inst;
}

TEST(FlexibleJobShop, FlatOpIndexing) {
  const FlexibleJobShopInstance inst = tiny();
  EXPECT_EQ(inst.total_ops(), 3);
  EXPECT_EQ(fjs_flat_op(inst, 0, 0), 0);
  EXPECT_EQ(fjs_flat_op(inst, 0, 1), 1);
  EXPECT_EQ(fjs_flat_op(inst, 1, 0), 2);
}

TEST(FlexibleJobShop, HandDecodedSchedule) {
  const FlexibleJobShopInstance inst = tiny();
  // assign: j0 op0 -> m0 (3), j0 op1 -> m1 (2), j1 op0 -> m1 (1).
  const std::vector<int> assign = {0, 1, 1};
  const std::vector<int> seq = {1, 0, 0};
  // j1 op0 on m1 [0,1); j0 op0 on m0 [0,3); j0 op1 on m1 [3,5).
  const Schedule s = decode_flexible_job_shop(inst, assign, seq);
  EXPECT_EQ(s.makespan(), 5);
  EXPECT_EQ(validate(s, inst.validation_spec()), std::nullopt);
}

TEST(FlexibleJobShop, MachineReleaseDatesDelayStart) {
  FlexibleJobShopInstance inst = tiny();
  inst.machine_release = {10, 0};
  const std::vector<int> assign = {0, 1, 1};
  const std::vector<int> seq = {0, 0, 1};
  const Schedule s = decode_flexible_job_shop(inst, assign, seq);
  for (const auto& op : s.ops) {
    if (op.machine == 0) EXPECT_GE(op.start, 10);
  }
}

TEST(FlexibleJobShop, TimeLagsSeparateConsecutiveOps) {
  FlexibleJobShopInstance inst = tiny();
  inst.ops[0][0].min_lag_after = 7;
  const std::vector<int> assign = {0, 0, 0};
  const std::vector<int> seq = {0, 0, 1};
  const Schedule s = decode_flexible_job_shop(inst, assign, seq);
  // j0 op0 [0,3); lag 7 => op1 starts >= 10.
  EXPECT_GE(s.ops[1].start, 10);
  EXPECT_EQ(validate(s, inst.validation_spec()), std::nullopt);
}

TEST(FlexibleJobShop, DetachedSetupsOverlapWaiting) {
  // One machine, two jobs, big setup. Detached: setup runs while job 1 is
  // still "travelling", so with job arrival late the setup hides inside
  // the wait. Attached: setup starts only after both are ready.
  FlexibleJobShopInstance inst;
  inst.jobs = 2;
  inst.machines = 1;
  inst.ops.resize(2);
  inst.ops[0].resize(1);
  inst.ops[0][0].choices = {{0, 5}};
  inst.ops[1].resize(1);
  inst.ops[1][0].choices = {{0, 5}};
  inst.setup.assign(1, std::vector<std::vector<Time>>(
                           3, std::vector<Time>(2, 4)));  // all setups = 4
  inst.attrs.release = {0, 20};

  const std::vector<int> assign = {0, 0};
  const std::vector<int> seq = {0, 1};
  inst.detached_setup = true;
  Schedule detached = decode_flexible_job_shop(inst, assign, seq);
  // j0: setup [?], start max(0, 0+4)=4, runs [4,9). j1 ready at 20;
  // machine free 9 + setup 4 = 13 < 20, so start 20.
  EXPECT_EQ(detached.makespan(), 25);

  inst.detached_setup = false;
  Schedule attached = decode_flexible_job_shop(inst, assign, seq);
  // attached: j1 start = max(20, 9) + 4 = 24, ends 29.
  EXPECT_EQ(attached.makespan(), 29);
}

class FjsSweep : public ::testing::TestWithParam<int> {};

TEST_P(FjsSweep, RandomGenomesDecodeFeasibly) {
  const int seed = GetParam();
  FjsParams params;
  params.jobs = 4 + seed % 6;
  params.machines = 3 + seed % 4;
  params.ops_per_job = 2 + seed % 4;
  params.eligible_machines = 1 + seed % 3;
  params.setup_hi = (seed % 2 == 0) ? 6 : 0;
  params.detached_setup = (seed % 4 < 2);
  params.machine_release_hi = (seed % 3 == 0) ? 15 : 0;
  params.max_lag = (seed % 5 == 0) ? 4 : 0;
  const FlexibleJobShopInstance inst =
      random_flexible_job_shop(params, static_cast<std::uint64_t>(seed) + 17);
  par::Rng rng(static_cast<std::uint64_t>(seed) * 131 + 3);
  for (int trial = 0; trial < 8; ++trial) {
    const auto assign = random_fjs_assignment(inst, rng);
    const auto seq = random_fjs_sequence(inst, rng);
    const Schedule s = decode_flexible_job_shop(inst, assign, seq);
    ASSERT_EQ(validate(s, inst.validation_spec()), std::nullopt)
        << "seed=" << seed << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FjsSweep, ::testing::Range(0, 16));

TEST(FlexibleJobShop, AssignmentChromosomeRespectsDomains) {
  par::Rng rng(21);
  const FlexibleJobShopInstance inst = tiny();
  for (int trial = 0; trial < 20; ++trial) {
    const auto assign = random_fjs_assignment(inst, rng);
    ASSERT_EQ(assign.size(), 3u);
    for (std::size_t i = 0; i < assign.size(); ++i) {
      EXPECT_GE(assign[i], 0);
      EXPECT_LT(assign[i], 2);
    }
  }
}

TEST(FlexibleJobShop, ObjectiveMatchesScheduleMakespan) {
  const FlexibleJobShopInstance inst = tiny();
  const std::vector<int> assign = {0, 1, 1};
  const std::vector<int> seq = {1, 0, 0};
  const Schedule s = decode_flexible_job_shop(inst, assign, seq);
  EXPECT_DOUBLE_EQ(
      flexible_job_shop_objective(inst, s, Criterion::kMakespan),
      static_cast<double>(s.makespan()));
}

}  // namespace
}  // namespace psga::sched
