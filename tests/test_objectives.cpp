#include "src/sched/objectives.h"

#include <gtest/gtest.h>

#include <vector>

namespace psga::sched {
namespace {

JobAttributes attrs_3jobs() {
  JobAttributes attrs;
  attrs.due = {10, 20, 30};
  attrs.weight = {1.0, 2.0, 3.0};
  return attrs;
}

TEST(Objectives, Makespan) {
  const std::vector<Time> completion = {12, 25, 18};
  EXPECT_DOUBLE_EQ(
      evaluate_criterion(Criterion::kMakespan, completion, attrs_3jobs()),
      25.0);
}

TEST(Objectives, TotalWeightedCompletion) {
  const std::vector<Time> completion = {12, 25, 18};
  // 1*12 + 2*25 + 3*18 = 116
  EXPECT_DOUBLE_EQ(evaluate_criterion(Criterion::kTotalWeightedCompletion,
                                      completion, attrs_3jobs()),
                   116.0);
}

TEST(Objectives, TotalWeightedTardiness) {
  const std::vector<Time> completion = {12, 25, 18};
  // T = {2, 5, 0}; weighted: 1*2 + 2*5 + 3*0 = 12
  EXPECT_DOUBLE_EQ(evaluate_criterion(Criterion::kTotalWeightedTardiness,
                                      completion, attrs_3jobs()),
                   12.0);
}

TEST(Objectives, WeightedUnitPenalty) {
  const std::vector<Time> completion = {12, 25, 18};
  // U = {1, 1, 0}; weighted: 1 + 2 = 3
  EXPECT_DOUBLE_EQ(evaluate_criterion(Criterion::kWeightedUnitPenalty,
                                      completion, attrs_3jobs()),
                   3.0);
}

TEST(Objectives, MaxTardiness) {
  const std::vector<Time> completion = {12, 25, 18};
  EXPECT_DOUBLE_EQ(
      evaluate_criterion(Criterion::kMaxTardiness, completion, attrs_3jobs()),
      5.0);
  const std::vector<Time> early = {1, 2, 3};
  EXPECT_DOUBLE_EQ(
      evaluate_criterion(Criterion::kMaxTardiness, early, attrs_3jobs()), 0.0);
}

TEST(Objectives, DefaultsWhenAttributesMissing) {
  JobAttributes empty;
  const std::vector<Time> completion = {12, 25};
  // No due dates: nothing is ever tardy; weights default to 1.
  EXPECT_DOUBLE_EQ(evaluate_criterion(Criterion::kTotalWeightedTardiness,
                                      completion, empty),
                   0.0);
  EXPECT_DOUBLE_EQ(evaluate_criterion(Criterion::kTotalWeightedCompletion,
                                      completion, empty),
                   37.0);
}

TEST(Objectives, CompositeCombinesTerms) {
  CompositeObjective obj;
  obj.terms = {{Criterion::kMakespan, 0.6}, {Criterion::kMaxTardiness, 0.4}};
  const std::vector<Time> completion = {12, 25, 18};
  EXPECT_DOUBLE_EQ(obj.evaluate(completion, attrs_3jobs()),
                   0.6 * 25.0 + 0.4 * 5.0);
}

TEST(Objectives, FitnessEq1) {
  EXPECT_DOUBLE_EQ(fitness_eq1(90.0, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(fitness_eq1(110.0, 100.0), 0.0);  // clamped at zero
}

TEST(Objectives, FitnessEq2) {
  EXPECT_DOUBLE_EQ(fitness_eq2(4.0), 0.25);
  EXPECT_GT(fitness_eq2(0.0), 1e17);  // guarded
  // Better (smaller) objective => larger fitness.
  EXPECT_GT(fitness_eq2(10.0), fitness_eq2(20.0));
}

TEST(Objectives, CriterionNames) {
  EXPECT_EQ(to_string(Criterion::kMakespan), "Cmax");
  EXPECT_EQ(to_string(Criterion::kTotalWeightedCompletion), "sum wjCj");
  EXPECT_EQ(to_string(Criterion::kTotalWeightedTardiness), "sum wjTj");
  EXPECT_EQ(to_string(Criterion::kWeightedUnitPenalty), "sum wjUj");
  EXPECT_EQ(to_string(Criterion::kMaxTardiness), "Tmax");
}

}  // namespace
}  // namespace psga::sched
