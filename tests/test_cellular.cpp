#include "src/ga/cellular_ga.h"

#include <gtest/gtest.h>

#include "src/ga/problems.h"
#include "src/sched/classics.h"
#include "src/sched/taillard.h"

namespace psga::ga {
namespace {

ProblemPtr problem() {
  return std::make_shared<FlowShopProblem>(
      sched::make_taillard(sched::taillard_20x5().front()));
}

CellularConfig config(std::uint64_t seed = 1) {
  CellularConfig cfg;
  cfg.width = 8;
  cfg.height = 8;
  cfg.termination.max_generations = 25;
  cfg.seed = seed;
  return cfg;
}

TEST(CellularGa, Improves) {
  CellularGa ga(problem(), config());
  const GaResult result = ga.run();
  EXPECT_LT(result.best_objective, result.history.front());
  for (std::size_t i = 1; i < result.history.size(); ++i) {
    EXPECT_LE(result.history[i], result.history[i - 1]);
  }
}

TEST(CellularGa, IndependentOfThreadCount) {
  // Per-cell Rng streams make the outcome a pure function of the seed.
  std::vector<double> history1;
  {
    par::ThreadPool pool(1);
    CellularGa ga(problem(), config(42), &pool);
    history1 = ga.run().history;
  }
  for (int threads : {2, 8}) {
    par::ThreadPool pool(threads);
    CellularGa ga(problem(), config(42), &pool);
    EXPECT_EQ(ga.run().history, history1) << "threads=" << threads;
  }
}

TEST(CellularGa, DifferentSeedsDiffer) {
  par::ThreadPool pool(4);
  CellularGa a(problem(), config(1), &pool);
  CellularGa b(problem(), config(2), &pool);
  EXPECT_NE(a.run().history, b.run().history);
}

TEST(CellularGa, EvaluationsAccountedPerCellPerGeneration) {
  CellularConfig cfg = config();
  cfg.termination.max_generations = 5;
  CellularGa ga(problem(), cfg);
  const GaResult result = ga.run();
  EXPECT_EQ(result.evaluations, 64LL * 6);  // init + 5 steps
}

TEST(CellularGa, ReplaceIfBetterNeverRegressesCells) {
  CellularConfig cfg = config(3);
  cfg.replace_if_better = true;
  cfg.termination.max_generations = 1;
  CellularGa ga(problem(), cfg);
  ga.init();
  std::vector<double> before;
  for (int c = 0; c < ga.cells(); ++c) before.push_back(ga.objective_at(c));
  ga.step();
  for (int c = 0; c < ga.cells(); ++c) {
    EXPECT_LE(ga.objective_at(c), before[static_cast<std::size_t>(c)]);
  }
}

TEST(CellularGa, BestReportedIsInGridHistory) {
  CellularGa ga(problem(), config(5));
  const GaResult result = ga.run();
  const auto p = problem();
  EXPECT_DOUBLE_EQ(p->objective(result.best), result.best_objective);
  EXPECT_TRUE(genome_valid(result.best, p->traits()));
}

TEST(CellularGa, ReplaceCellInjects) {
  CellularGa ga(problem(), config(6));
  ga.init();
  const Genome g = ga.individual(0);
  ga.replace_cell(5, g, 0.5);
  EXPECT_DOUBLE_EQ(ga.objective_at(5), 0.5);
  EXPECT_DOUBLE_EQ(ga.best_objective(), 0.5);
}

TEST(CellularGa, MooreNeighborhoodLargerThanVonNeumann) {
  // Behavioural proxy: Moore radius-1 has 8 neighbors vs 4, so diffusion
  // is faster; just check both run and produce valid results.
  CellularConfig von = config(7);
  von.neighborhood = Neighborhood::kVonNeumann;
  CellularConfig moore = config(7);
  moore.neighborhood = Neighborhood::kMoore;
  CellularGa a(problem(), von);
  CellularGa b(problem(), moore);
  const GaResult ra = a.run();
  const GaResult rb = b.run();
  EXPECT_GT(ra.evaluations, 0);
  EXPECT_GT(rb.evaluations, 0);
  EXPECT_NE(ra.history, rb.history);  // different dynamics
}

TEST(CellularGa, WorksOnJobShopEncoding) {
  auto js = std::make_shared<JobShopProblem>(sched::ft06().instance);
  CellularConfig cfg = config(8);
  cfg.width = 6;
  cfg.height = 6;
  CellularGa ga(js, cfg);
  const GaResult result = ga.run();
  EXPECT_TRUE(genome_valid(result.best, js->traits()));
  EXPECT_GE(result.best_objective, 55.0);  // ft06 optimum bound
}

}  // namespace
}  // namespace psga::ga
