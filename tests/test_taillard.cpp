#include "src/sched/taillard.h"

#include <gtest/gtest.h>

#include "src/sched/heuristics.h"

namespace psga::sched {
namespace {

TEST(TaillardRng, MatchesPublishedRecurrence) {
  // One step of x <- 16807 x mod (2^31 - 1) from seed 873654221 (ta001's
  // published time seed), computed independently with 64-bit arithmetic.
  TaillardRng rng(873654221);
  (void)rng.next(1, 99);
  const std::int64_t expected =
      (16807LL * 873654221LL) % 2147483647LL;
  EXPECT_EQ(rng.state(), static_cast<std::int32_t>(expected));
}

TEST(TaillardRng, ValuesInRange) {
  TaillardRng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const int v = rng.next(1, 99);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 99);
  }
}

TEST(TaillardRng, DeterministicSequence) {
  TaillardRng a(555);
  TaillardRng b(555);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(1, 99), b.next(1, 99));
}

TEST(TaillardFlowShop, ShapeAndRange) {
  const FlowShopInstance inst = taillard_flow_shop(20, 5, 873654221);
  EXPECT_EQ(inst.jobs, 20);
  EXPECT_EQ(inst.machines, 5);
  ASSERT_EQ(inst.proc.size(), 5u);
  for (const auto& row : inst.proc) {
    ASSERT_EQ(row.size(), 20u);
    for (Time p : row) {
      EXPECT_GE(p, 1);
      EXPECT_LE(p, 99);
    }
  }
}

TEST(TaillardFlowShop, RegenerationIsBitExact) {
  const FlowShopInstance a = taillard_flow_shop(20, 5, 873654221);
  const FlowShopInstance b = taillard_flow_shop(20, 5, 873654221);
  EXPECT_EQ(a.proc, b.proc);
}

TEST(TaillardFlowShop, BenchmarkTableWellFormed) {
  const auto& table = taillard_20x5();
  ASSERT_EQ(table.size(), 10u);
  for (const auto& bench : table) {
    EXPECT_EQ(bench.jobs, 20);
    EXPECT_EQ(bench.machines, 5);
    EXPECT_GT(bench.best_known, 1000);
    EXPECT_LT(bench.best_known, 1500);
  }
}

TEST(TaillardFlowShop, NehIsCloseToBestKnownOnTa001) {
  // NEH typically lands within a few percent of the optimum on 20x5; use a
  // generous 10% guard so the test documents shape without being brittle.
  const auto& bench = taillard_20x5().front();
  const FlowShopInstance inst = make_taillard(bench);
  const Time neh = neh_makespan(inst);
  EXPECT_GE(neh, bench.best_known);
  EXPECT_LE(static_cast<double>(neh),
            1.10 * static_cast<double>(bench.best_known));
}

TEST(TaillardJobShop, ShapeAndPermutationRoutes) {
  const JobShopInstance inst = taillard_job_shop(15, 15, 840612802, 398197754);
  EXPECT_EQ(inst.jobs, 15);
  EXPECT_EQ(inst.machines, 15);
  for (int j = 0; j < inst.jobs; ++j) {
    ASSERT_EQ(inst.ops_of(j), 15);
    std::vector<bool> seen(15, false);
    for (const auto& op : inst.ops[static_cast<std::size_t>(j)]) {
      EXPECT_GE(op.duration, 1);
      EXPECT_LE(op.duration, 99);
      ASSERT_FALSE(seen[static_cast<std::size_t>(op.machine)])
          << "machine repeated in route";
      seen[static_cast<std::size_t>(op.machine)] = true;
    }
  }
}

TEST(TaillardJobShop, SeedsChangeInstance) {
  const JobShopInstance a = taillard_job_shop(10, 5, 1, 2);
  const JobShopInstance b = taillard_job_shop(10, 5, 3, 2);
  bool different = false;
  for (int j = 0; j < 10 && !different; ++j) {
    for (int k = 0; k < 5 && !different; ++k) {
      if (a.op(j, k).duration != b.op(j, k).duration) different = true;
    }
  }
  EXPECT_TRUE(different);
}

}  // namespace
}  // namespace psga::sched
