#include "src/sched/heuristics.h"

#include <gtest/gtest.h>

#include <numeric>

#include "src/par/rng.h"
#include "src/sched/classics.h"
#include "src/sched/taillard.h"

namespace psga::sched {
namespace {

TEST(Neh, PermutationIsValid) {
  const FlowShopInstance inst = taillard_flow_shop(20, 5, 873654221);
  const auto perm = neh_permutation(inst);
  ASSERT_EQ(perm.size(), 20u);
  std::vector<bool> seen(20, false);
  for (int j : perm) {
    ASSERT_GE(j, 0);
    ASSERT_LT(j, 20);
    ASSERT_FALSE(seen[static_cast<std::size_t>(j)]);
    seen[static_cast<std::size_t>(j)] = true;
  }
}

TEST(Neh, BeatsAverageRandomPermutation) {
  const FlowShopInstance inst = taillard_flow_shop(20, 5, 873654221);
  const Time neh = neh_makespan(inst);
  par::Rng rng(5);
  std::vector<int> perm(20);
  std::iota(perm.begin(), perm.end(), 0);
  double random_total = 0.0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    rng.shuffle(perm);
    random_total += static_cast<double>(flow_shop_makespan(inst, perm));
  }
  EXPECT_LT(static_cast<double>(neh), random_total / trials);
}

TEST(Neh, OptimalOnTinyInstance) {
  // 2 jobs: both orders checkable by hand; NEH must pick the better one.
  FlowShopInstance inst;
  inst.jobs = 2;
  inst.machines = 2;
  inst.proc = {{3, 2}, {2, 4}};
  // Orders: (0,1) -> 9, (1,0) -> 8.
  EXPECT_EQ(neh_makespan(inst), 8);
}

TEST(Neh, SingleJob) {
  FlowShopInstance inst;
  inst.jobs = 1;
  inst.machines = 3;
  inst.proc = {{4}, {5}, {6}};
  EXPECT_EQ(neh_permutation(inst), (std::vector<int>{0}));
  EXPECT_EQ(neh_makespan(inst), 15);
}

TEST(Dispatch, BestRuleBeatsWorstRandomOnFt06) {
  const Time best = best_dispatch_makespan(ft06().instance);
  EXPECT_GE(best, ft06().optimum);
  EXPECT_LE(best, 2 * ft06().optimum);
}

TEST(Dispatch, ReturnsFeasibleValueForAllClassics) {
  for (const ClassicInstance* c : classic_instances()) {
    const Time best = best_dispatch_makespan(c->instance);
    EXPECT_GE(best, c->optimum) << c->name;
    EXPECT_LE(best, 3 * c->optimum) << c->name;
  }
}

}  // namespace
}  // namespace psga::sched
