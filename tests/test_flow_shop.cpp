#include "src/sched/flow_shop.h"

#include <gtest/gtest.h>

#include <numeric>

#include "src/par/rng.h"

namespace psga::sched {
namespace {

/// 2 machines x 2 jobs: p(m0) = {3, 2}, p(m1) = {2, 4}.
FlowShopInstance tiny() {
  FlowShopInstance inst;
  inst.jobs = 2;
  inst.machines = 2;
  inst.proc = {{3, 2}, {2, 4}};
  return inst;
}

TEST(FlowShop, HandComputedMakespan) {
  const FlowShopInstance inst = tiny();
  // Order (0, 1): m0: j0 [0,3), j1 [3,5); m1: j0 [3,5), j1 [5,9) => 9.
  const std::vector<int> order01 = {0, 1};
  EXPECT_EQ(flow_shop_makespan(inst, order01), 9);
  // Order (1, 0): m0: j1 [0,2), j0 [2,5); m1: j1 [2,6), j0 [6,8) => 8.
  const std::vector<int> order10 = {1, 0};
  EXPECT_EQ(flow_shop_makespan(inst, order10), 8);
}

TEST(FlowShop, CompletionTimesMatchSchedule) {
  const FlowShopInstance inst = tiny();
  const std::vector<int> perm = {0, 1};
  const auto completion = flow_shop_completion_times(inst, perm);
  EXPECT_EQ(completion[0], 5);
  EXPECT_EQ(completion[1], 9);
  const Schedule schedule = flow_shop_schedule(inst, perm);
  const auto from_schedule = schedule.job_completion_times(inst.jobs);
  EXPECT_EQ(completion, from_schedule);
}

TEST(FlowShop, ScheduleIsFeasible) {
  const FlowShopInstance inst = tiny();
  const std::vector<int> perm = {1, 0};
  const Schedule schedule = flow_shop_schedule(inst, perm);
  EXPECT_EQ(validate(schedule, inst.validation_spec()), std::nullopt);
}

TEST(FlowShop, ReleaseTimesDelayJobs) {
  FlowShopInstance inst = tiny();
  inst.attrs.release = {4, 0};
  const std::vector<int> perm = {0, 1};
  // j0 cannot start before 4: m0 [4,7), m1 [7,9); j1 m0 [7,9), m1 [9,13).
  EXPECT_EQ(flow_shop_makespan(inst, perm), 13);
  const Schedule schedule = flow_shop_schedule(inst, perm);
  EXPECT_EQ(validate(schedule, inst.validation_spec()), std::nullopt);
}

TEST(FlowShop, SingleMachineIsSumOfProcessing) {
  FlowShopInstance inst;
  inst.jobs = 4;
  inst.machines = 1;
  inst.proc = {{5, 1, 3, 2}};
  std::vector<int> perm = {2, 0, 3, 1};
  EXPECT_EQ(flow_shop_makespan(inst, perm), 11);
}

class FlowShopRandomPermutations : public ::testing::TestWithParam<int> {};

TEST_P(FlowShopRandomPermutations, AllPermutationsYieldFeasibleSchedules) {
  par::Rng rng(static_cast<std::uint64_t>(GetParam()));
  FlowShopInstance inst;
  inst.jobs = 3 + GetParam() % 8;
  inst.machines = 2 + GetParam() % 5;
  inst.proc.assign(static_cast<std::size_t>(inst.machines),
                   std::vector<Time>(static_cast<std::size_t>(inst.jobs), 0));
  for (auto& row : inst.proc) {
    for (auto& p : row) p = rng.range(1, 50);
  }
  std::vector<int> perm(static_cast<std::size_t>(inst.jobs));
  std::iota(perm.begin(), perm.end(), 0);
  for (int trial = 0; trial < 20; ++trial) {
    rng.shuffle(perm);
    const Schedule schedule = flow_shop_schedule(inst, perm);
    ASSERT_EQ(validate(schedule, inst.validation_spec()), std::nullopt);
    EXPECT_EQ(schedule.makespan(), flow_shop_makespan(inst, perm));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FlowShopRandomPermutations,
                         ::testing::Range(0, 12));

TEST(FlowShop, ObjectiveCriteriaConsistent) {
  FlowShopInstance inst = tiny();
  inst.attrs.due = {4, 20};
  inst.attrs.weight = {2.0, 1.0};
  const std::vector<int> perm = {0, 1};
  // completion = {5, 9}; T = {1, 0}.
  EXPECT_DOUBLE_EQ(
      flow_shop_objective(inst, perm, Criterion::kMakespan), 9.0);
  EXPECT_DOUBLE_EQ(
      flow_shop_objective(inst, perm, Criterion::kTotalWeightedCompletion),
      2.0 * 5 + 1.0 * 9);
  EXPECT_DOUBLE_EQ(
      flow_shop_objective(inst, perm, Criterion::kTotalWeightedTardiness),
      2.0);
}

TEST(FlowShop, TotalProcessing) {
  const FlowShopInstance inst = tiny();
  EXPECT_EQ(inst.total_processing(0), 5);
  EXPECT_EQ(inst.total_processing(1), 6);
}

}  // namespace
}  // namespace psga::sched
