#include "src/par/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace psga::par {
namespace {

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1);
  std::vector<int> hits(100, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, EveryIndexExactlyOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, MoreThreadsThanWork) {
  ThreadPool pool(16);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ChunksPartitionRange) {
  ThreadPool pool(6);
  std::mutex mutex;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_chunks(103, [&](std::size_t begin, std::size_t end) {
    std::lock_guard lock(mutex);
    chunks.emplace_back(begin, end);
  });
  std::sort(chunks.begin(), chunks.end());
  std::size_t expected_begin = 0;
  for (const auto& [begin, end] : chunks) {
    EXPECT_EQ(begin, expected_begin);
    EXPECT_LT(begin, end);
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, 103u);
}

TEST(ThreadPool, ReusableAcrossRegions) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(100, [&](std::size_t i) {
      total += static_cast<long>(i);
    });
  }
  EXPECT_EQ(total.load(), 50L * (99 * 100 / 2));
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool(8);
  std::vector<double> values(10000);
  std::iota(values.begin(), values.end(), 1.0);
  std::vector<double> out(values.size());
  pool.parallel_for(values.size(),
                    [&](std::size_t i) { out[i] = values[i] * 2.0; });
  const double serial = std::accumulate(values.begin(), values.end(), 0.0) * 2.0;
  const double parallel = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(serial, parallel);
}

TEST(ThreadPool, DefaultPoolExists) {
  EXPECT_GE(default_pool().thread_count(), 1);
  std::atomic<int> hits{0};
  default_pool().parallel_for(10, [&](std::size_t) { ++hits; });
  EXPECT_EQ(hits.load(), 10);
}

TEST(ThreadPool, NegativeThreadCountClampedToDefault) {
  ThreadPool pool(-5);
  EXPECT_GE(pool.thread_count(), 1);
}

}  // namespace
}  // namespace psga::par
