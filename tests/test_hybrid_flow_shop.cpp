#include "src/sched/hybrid_flow_shop.h"

#include <gtest/gtest.h>

#include <numeric>

#include "src/par/rng.h"
#include "src/sched/generators.h"

namespace psga::sched {
namespace {

/// One stage with 2 identical machines, 4 jobs of durations {4, 3, 2, 1}:
/// pure parallel-machine scheduling.
HybridFlowShopInstance parallel_machines() {
  HybridFlowShopInstance inst;
  inst.jobs = 4;
  inst.machines_per_stage = {2};
  inst.proc = {{{4, 4}, {3, 3}, {2, 2}, {1, 1}}};
  return inst;
}

TEST(HybridFlowShop, GlobalMachineIds) {
  HybridFlowShopInstance inst;
  inst.machines_per_stage = {2, 3, 1};
  EXPECT_EQ(inst.total_machines(), 6);
  EXPECT_EQ(inst.global_machine(0, 0), 0);
  EXPECT_EQ(inst.global_machine(0, 1), 1);
  EXPECT_EQ(inst.global_machine(1, 0), 2);
  EXPECT_EQ(inst.global_machine(2, 0), 5);
}

TEST(HybridFlowShop, ParallelMachinesListSchedule) {
  const HybridFlowShopInstance inst = parallel_machines();
  // Order (0,1,2,3): m0 gets j0 [0,4), m1 gets j1 [0,3),
  // j2 goes to m1 (ends 5; m0 would end 6): [3,5), j3 to m0? m0 ends 4+1=5,
  // m1 ends 5+1=6 -> m0 [4,5). Makespan 5.
  const std::vector<int> perm = {0, 1, 2, 3};
  const Schedule s = decode_hybrid_flow_shop(inst, perm);
  EXPECT_EQ(s.makespan(), 5);
  EXPECT_EQ(validate(s, inst.validation_spec()), std::nullopt);
}

TEST(HybridFlowShop, TwoStagePipelineHandCase) {
  HybridFlowShopInstance inst;
  inst.jobs = 2;
  inst.machines_per_stage = {1, 1};
  // Identical to the tiny flow shop: p(s0) = {3, 2}, p(s1) = {2, 4}.
  inst.proc = {{{3}, {2}}, {{2}, {4}}};
  const std::vector<int> perm = {1, 0};
  const Schedule s = decode_hybrid_flow_shop(inst, perm);
  EXPECT_EQ(s.makespan(), 8);  // matches flow-shop hand computation
  EXPECT_EQ(validate(s, inst.validation_spec()), std::nullopt);
}

TEST(HybridFlowShop, UnrelatedMachinesPickFaster) {
  HybridFlowShopInstance inst;
  inst.jobs = 1;
  inst.machines_per_stage = {2};
  inst.proc = {{{9, 2}}};  // machine 1 much faster for job 0
  const std::vector<int> perm = {0};
  const Schedule s = decode_hybrid_flow_shop(inst, perm);
  EXPECT_EQ(s.makespan(), 2);
  EXPECT_EQ(s.ops[0].machine, inst.global_machine(0, 1));
}

class HfsSweep : public ::testing::TestWithParam<int> {};

TEST_P(HfsSweep, RandomInstancesFeasible) {
  const int seed = GetParam();
  HfsParams params;
  params.jobs = 6 + seed % 10;
  params.machines_per_stage = {1 + seed % 3, 2, 1 + (seed / 2) % 2};
  params.unrelatedness = (seed % 2 == 0) ? 1.0 : 2.5;
  params.setup_hi = (seed % 3 == 0) ? 9 : 0;
  const HybridFlowShopInstance inst =
      random_hybrid_flow_shop(params, static_cast<std::uint64_t>(seed) + 1);
  par::Rng rng(static_cast<std::uint64_t>(seed) * 31 + 7);
  std::vector<int> perm(static_cast<std::size_t>(inst.jobs));
  std::iota(perm.begin(), perm.end(), 0);
  for (int trial = 0; trial < 8; ++trial) {
    rng.shuffle(perm);
    const Schedule s = decode_hybrid_flow_shop(inst, perm);
    ASSERT_EQ(validate(s, inst.validation_spec()), std::nullopt)
        << "seed=" << seed << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, HfsSweep, ::testing::Range(0, 12));

TEST(HybridFlowShop, BlockingNeverBeatsUnlimitedBuffers) {
  HfsParams params;
  params.jobs = 10;
  params.machines_per_stage = {2, 2, 2};
  HybridFlowShopInstance buffered = random_hybrid_flow_shop(params, 99);
  HybridFlowShopInstance blocked = buffered;
  blocked.blocking = true;
  par::Rng rng(123);
  std::vector<int> perm(10);
  std::iota(perm.begin(), perm.end(), 0);
  for (int trial = 0; trial < 10; ++trial) {
    rng.shuffle(perm);
    const Time free_ms = decode_hybrid_flow_shop(buffered, perm).makespan();
    const Time block_ms = decode_hybrid_flow_shop(blocked, perm).makespan();
    EXPECT_GE(block_ms, free_ms);
  }
}

TEST(HybridFlowShop, BlockingScheduleStillFeasible) {
  HfsParams params;
  params.jobs = 8;
  params.machines_per_stage = {2, 1, 2};
  params.blocking = true;
  const HybridFlowShopInstance inst = random_hybrid_flow_shop(params, 7);
  std::vector<int> perm(8);
  std::iota(perm.begin(), perm.end(), 0);
  const Schedule s = decode_hybrid_flow_shop(inst, perm);
  EXPECT_EQ(validate(s, inst.validation_spec()), std::nullopt);
}

TEST(HybridFlowShop, SetupTimesEnforced) {
  HfsParams params;
  params.jobs = 6;
  params.machines_per_stage = {2, 2};
  params.setup_hi = 10;
  const HybridFlowShopInstance inst = random_hybrid_flow_shop(params, 55);
  std::vector<int> perm(6);
  std::iota(perm.begin(), perm.end(), 0);
  const Schedule s = decode_hybrid_flow_shop(inst, perm);
  // validation_spec carries the setup-aware machine_gap.
  EXPECT_EQ(validate(s, inst.validation_spec()), std::nullopt);
}

TEST(HybridFlowShop, CompositeObjective) {
  HybridFlowShopInstance inst = parallel_machines();
  inst.attrs.due = {1, 1, 1, 1};
  CompositeObjective obj;
  obj.terms = {{Criterion::kMakespan, 0.5}, {Criterion::kMaxTardiness, 0.5}};
  const std::vector<int> perm = {0, 1, 2, 3};
  const Schedule s = decode_hybrid_flow_shop(inst, perm);
  const double value = hybrid_flow_shop_objective(inst, s, obj);
  EXPECT_GT(value, 0.0);
  const double cmax = hybrid_flow_shop_objective(inst, s, Criterion::kMakespan);
  EXPECT_DOUBLE_EQ(cmax, 5.0);
}

}  // namespace
}  // namespace psga::sched
