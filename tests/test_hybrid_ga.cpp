#include "src/ga/hybrid_ga.h"

#include <gtest/gtest.h>

#include "src/ga/problems.h"
#include "src/sched/classics.h"
#include "src/sched/taillard.h"

namespace psga::ga {
namespace {

ProblemPtr problem() {
  return std::make_shared<JobShopProblem>(sched::ft06().instance);
}

IslandsOfCellularConfig config(std::uint64_t seed = 1) {
  IslandsOfCellularConfig cfg;
  cfg.islands = 3;
  cfg.cell.width = 5;
  cfg.cell.height = 5;
  cfg.migration_interval = 5;
  cfg.termination.max_generations = 20;
  cfg.seed = seed;
  return cfg;
}

TEST(IslandsOfCellular, RunsAndImproves) {
  IslandsOfCellularGa ga(problem(), config());
  const GaResult result = ga.run();
  EXPECT_LT(result.best_objective, result.history.front());
  EXPECT_GE(result.best_objective, 55.0);
  EXPECT_TRUE(genome_valid(result.best, problem()->traits()));
}

TEST(IslandsOfCellular, Deterministic) {
  IslandsOfCellularGa a(problem(), config(21));
  IslandsOfCellularGa b(problem(), config(21));
  EXPECT_EQ(a.run().history, b.run().history);
}

TEST(IslandsOfCellular, EvaluationsAggregateAllIslands) {
  IslandsOfCellularConfig cfg = config();
  cfg.termination.max_generations = 4;
  IslandsOfCellularGa ga(problem(), cfg);
  const GaResult result = ga.run();
  // 3 islands x 25 cells x (init + 4 steps).
  EXPECT_EQ(result.evaluations, 3LL * 25 * 5);
}

TEST(IslandsOfCellular, MigrationChangesDynamics) {
  // Heavy migration (many migrants, every other step) must perturb the
  // evolutionary path relative to isolated islands.
  IslandsOfCellularConfig with = config(33);
  with.migration_interval = 2;
  with.migrants = 6;
  with.termination.max_generations = 40;
  IslandsOfCellularConfig without = with;
  without.migration_interval = 0;
  IslandsOfCellularGa a(problem(), with);
  IslandsOfCellularGa b(problem(), without);
  EXPECT_NE(a.run().history, b.run().history);
}

TEST(TorusIslandConfig, ModelBWiring) {
  GaConfig base;
  base.population = 8;
  base.termination.max_generations = 10;
  const IslandGaConfig cfg = make_torus_island_config(16, base, 3);
  EXPECT_EQ(cfg.islands, 16);
  EXPECT_EQ(cfg.migration.topology, Topology::kTorus);
  EXPECT_EQ(cfg.migration.interval, 3);
  // And it runs:
  IslandGa ga(std::make_shared<FlowShopProblem>(
                  sched::make_taillard(sched::taillard_20x5().front())),
              cfg);
  const RunResult result = ga.run();
  EXPECT_LT(result.best_objective,
            result.history.front() + 1.0);
}

}  // namespace
}  // namespace psga::ga
