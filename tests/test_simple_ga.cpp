#include "src/ga/simple_ga.h"

#include <gtest/gtest.h>

#include <set>

#include "src/ga/problems.h"
#include "src/sched/classics.h"
#include "src/sched/heuristics.h"
#include "src/sched/taillard.h"

namespace psga::ga {
namespace {

ProblemPtr ta001_problem() {
  return std::make_shared<FlowShopProblem>(
      sched::make_taillard(sched::taillard_20x5().front()));
}

GaConfig small_config(std::uint64_t seed = 1) {
  GaConfig cfg;
  cfg.population = 40;
  cfg.termination.max_generations = 40;
  cfg.seed = seed;
  return cfg;
}

TEST(SimpleGa, ImprovesOverRandomInitialization) {
  SimpleGa ga(ta001_problem(), small_config());
  const GaResult result = ga.run();
  ASSERT_GE(result.history.size(), 2u);
  EXPECT_LT(result.best_objective, result.history.front());
}

TEST(SimpleGa, HistoryIsMonotonicallyNonIncreasing) {
  SimpleGa ga(ta001_problem(), small_config(3));
  const GaResult result = ga.run();
  for (std::size_t i = 1; i < result.history.size(); ++i) {
    EXPECT_LE(result.history[i], result.history[i - 1]);
  }
}

TEST(SimpleGa, DeterministicForFixedSeed) {
  SimpleGa a(ta001_problem(), small_config(7));
  SimpleGa b(ta001_problem(), small_config(7));
  const GaResult ra = a.run();
  const GaResult rb = b.run();
  EXPECT_EQ(ra.best_objective, rb.best_objective);
  EXPECT_EQ(ra.history, rb.history);
  EXPECT_EQ(ra.best.seq, rb.best.seq);
}

TEST(SimpleGa, DifferentSeedsExploreDifferently) {
  SimpleGa a(ta001_problem(), small_config(1));
  SimpleGa b(ta001_problem(), small_config(2));
  EXPECT_NE(a.run().history, b.run().history);
}

TEST(SimpleGa, BestGenomeMatchesReportedObjective) {
  SimpleGa ga(ta001_problem(), small_config(5));
  const GaResult result = ga.run();
  const auto problem = ta001_problem();
  EXPECT_DOUBLE_EQ(problem->objective(result.best), result.best_objective);
  EXPECT_TRUE(genome_valid(result.best, problem->traits()));
}

TEST(SimpleGa, MaxGenerationsHonored) {
  GaConfig cfg = small_config();
  cfg.termination.max_generations = 13;
  SimpleGa ga(ta001_problem(), cfg);
  const GaResult result = ga.run();
  EXPECT_EQ(result.generations, 13);
  EXPECT_EQ(result.history.size(), 14u);  // initial + 13 generations
}

TEST(SimpleGa, TargetObjectiveStopsEarly) {
  GaConfig cfg = small_config();
  cfg.termination.max_generations = 1000;
  cfg.termination.target_objective = 1e9;  // any value qualifies
  SimpleGa ga(ta001_problem(), cfg);
  const GaResult result = ga.run();
  EXPECT_EQ(result.generations, 0);
}

TEST(SimpleGa, StagnationStopsEarly) {
  GaConfig cfg = small_config();
  cfg.termination.max_generations = 5000;
  cfg.termination.stagnation_generations = 5;
  cfg.population = 10;
  SimpleGa ga(ta001_problem(), cfg);
  const GaResult result = ga.run();
  EXPECT_LT(result.generations, 5000);
}

TEST(SimpleGa, TimeLimitStops) {
  GaConfig cfg = small_config();
  cfg.termination.max_generations = 1 << 30;
  cfg.termination.max_seconds = 0.1;
  SimpleGa ga(ta001_problem(), cfg);
  const GaResult result = ga.run();
  EXPECT_LT(result.seconds, 2.0);
}

TEST(SimpleGa, EvaluationCountMatchesPopulationTimesGenerations) {
  GaConfig cfg = small_config();
  cfg.population = 30;
  cfg.termination.max_generations = 10;
  SimpleGa ga(ta001_problem(), cfg);
  const GaResult result = ga.run();
  EXPECT_EQ(result.evaluations, 30LL * 11);  // init + 10 generations
}

TEST(SimpleGa, ElitismKeepsBest) {
  // With elites = 2 the best objective can never regress between steps —
  // already covered by monotone history — and the population must contain
  // the best individual after each step.
  GaConfig cfg = small_config();
  cfg.elites = 2;
  SimpleGa ga(ta001_problem(), cfg);
  ga.init();
  for (int g = 0; g < 10; ++g) {
    ga.step();
    const double best = ga.best_objective();
    const auto& objectives = ga.objectives();
    EXPECT_NE(std::find(objectives.begin(), objectives.end(), best),
              objectives.end());
  }
}

TEST(SimpleGa, ImmigrationKeepsPopulationSize) {
  GaConfig cfg = small_config();
  cfg.immigration_fraction = 0.2;
  SimpleGa ga(ta001_problem(), cfg);
  ga.init();
  for (int g = 0; g < 5; ++g) {
    ga.step();
    EXPECT_EQ(ga.population().size(), 40u);
  }
}

TEST(SimpleGa, ReferenceFitnessTransformRuns) {
  const auto problem = ta001_problem();
  GaConfig cfg = small_config();
  cfg.transform = FitnessTransform::kReference;
  // Fbar from NEH, as Eq. (1) prescribes ("some heuristic solution").
  cfg.reference_objective = static_cast<double>(sched::neh_makespan(
      sched::make_taillard(sched::taillard_20x5().front())));
  SimpleGa ga(problem, cfg);
  const GaResult result = ga.run();
  EXPECT_LT(result.best_objective, result.history.front());
}

TEST(SimpleGa, VariableMutationRateInterpolates) {
  GaConfig cfg = small_config();
  cfg.ops = default_operators(*ta001_problem());
  cfg.ops.mutation_rate = 0.5;
  cfg.ops.mutation_rate_final = 0.1;
  cfg.termination.max_generations = 11;
  SimpleGa ga(ta001_problem(), cfg);
  ga.init();
  EXPECT_DOUBLE_EQ(ga.current_mutation_rate(), 0.5);
  for (int g = 0; g < 10; ++g) ga.step();
  EXPECT_DOUBLE_EQ(ga.current_mutation_rate(), 0.1);
}

TEST(SimpleGa, NicheSharingPreservesDiversity) {
  // The niche penalty (survey §I) keeps the population more spread out
  // under heavy convergence pressure at the same budget. Compare mean
  // pairwise Hamming distance after a long run with a small population.
  auto mean_distance = [](const SimpleGa& ga) {
    const auto& pop = ga.population();
    double acc = 0.0;
    int pairs = 0;
    for (std::size_t i = 0; i < pop.size(); ++i) {
      for (std::size_t j = i + 1; j < pop.size(); ++j) {
        acc += hamming_distance(pop[i], pop[j]);
        ++pairs;
      }
    }
    return acc / pairs;
  };
  GaConfig plain = small_config(31);
  plain.population = 24;
  plain.elites = 4;
  plain.termination.max_generations = 200;
  plain.ops.selection = std::make_shared<RouletteSelection>();
  plain.ops.mutation_rate = 0.05;
  GaConfig niched = plain;
  niched.niche_radius = 20;  // chromosome length is 20: wide niches

  double plain_distance = 0.0;
  double niched_distance = 0.0;
  for (std::uint64_t seed : {31u, 32u, 33u}) {
    plain.seed = seed;
    niched.seed = seed;
    SimpleGa a(ta001_problem(), plain);
    a.init();
    for (int g = 0; g < 200; ++g) a.step();
    plain_distance += mean_distance(a);
    SimpleGa b(ta001_problem(), niched);
    b.init();
    for (int g = 0; g < 200; ++g) b.step();
    niched_distance += mean_distance(b);
  }
  EXPECT_GT(niched_distance, plain_distance);
}

TEST(SimpleGa, NicheSharingStillImproves) {
  GaConfig cfg = small_config(32);
  cfg.niche_radius = 8;
  SimpleGa ga(ta001_problem(), cfg);
  const GaResult result = ga.run();
  EXPECT_LT(result.best_objective, result.history.front());
}

TEST(SimpleGa, WarmStartSeedsInitialPopulation) {
  const auto inst = sched::make_taillard(sched::taillard_20x5().front());
  const auto problem = std::make_shared<FlowShopProblem>(inst);
  Genome neh;
  neh.seq = sched::neh_permutation(inst);
  const double neh_value = problem->objective(neh);

  GaConfig cfg = small_config(17);
  cfg.seed_genomes = {neh};
  SimpleGa ga(problem, cfg);
  ga.init();
  // The initial best is at least as good as the injected NEH solution.
  EXPECT_LE(ga.best_objective(), neh_value);
  EXPECT_EQ(ga.population().front().seq, neh.seq);
}

TEST(SimpleGa, WarmStartNeverWorsensFinalResult) {
  const auto inst = sched::make_taillard(sched::taillard_20x5().front());
  const auto problem = std::make_shared<FlowShopProblem>(inst);
  Genome neh;
  neh.seq = sched::neh_permutation(inst);
  const double neh_value = problem->objective(neh);
  GaConfig cfg = small_config(18);
  cfg.seed_genomes = {neh};
  SimpleGa ga(problem, cfg);
  // Elitism keeps the seeded solution alive, so the final best can only
  // be <= NEH.
  EXPECT_LE(ga.run().best_objective, neh_value);
}

TEST(SimpleGa, ExcessSeedsAreTruncated) {
  const auto problem = ta001_problem();
  par::Rng rng(9);
  GaConfig cfg = small_config(19);
  cfg.population = 5;
  for (int i = 0; i < 10; ++i) {
    cfg.seed_genomes.push_back(problem->random_genome(rng));
  }
  SimpleGa ga(problem, cfg);
  ga.init();
  EXPECT_EQ(ga.population().size(), 5u);
}

TEST(SimpleGa, ReplaceIndividualUpdatesBest) {
  SimpleGa ga(ta001_problem(), small_config());
  ga.init();
  Genome injected = ga.population().front();
  ga.replace_individual(3, injected, 1.0);  // absurdly good objective
  EXPECT_DOUBLE_EQ(ga.best_objective(), 1.0);
  EXPECT_EQ(ga.best_index(), 3);
}

TEST(SimpleGa, AbsorbGrowsPopulation) {
  SimpleGa ga(ta001_problem(), small_config());
  ga.init();
  const std::vector<Genome> extra = {ga.population().front()};
  const std::vector<double> objectives = {2.0};
  ga.absorb(extra, objectives);
  EXPECT_EQ(ga.population().size(), 41u);
  EXPECT_DOUBLE_EQ(ga.best_objective(), 2.0);
}

TEST(SimpleGa, StagnationFractionBounds) {
  SimpleGa ga(ta001_problem(), small_config());
  ga.init();
  const double f = ga.stagnation_fraction(3);
  EXPECT_GE(f, 0.0);
  EXPECT_LE(f, 1.0);
  // Distance threshold beyond genome length: everything is "close".
  EXPECT_DOUBLE_EQ(ga.stagnation_fraction(1000), 1.0);
}

}  // namespace
}  // namespace psga::ga
