#include "src/ga/memetic.h"

#include <gtest/gtest.h>

#include "src/ga/problems.h"
#include "src/sched/classics.h"
#include "src/sched/taillard.h"

namespace psga::ga {
namespace {

ProblemPtr problem() {
  return std::make_shared<FlowShopProblem>(
      sched::make_taillard(sched::taillard_20x5().front()));
}

MemeticConfig config(std::uint64_t seed = 1) {
  MemeticConfig cfg;
  cfg.base.population = 30;
  cfg.base.termination.max_generations = 30;
  cfg.base.seed = seed;
  cfg.interval = 5;
  cfg.refine_count = 2;
  cfg.search_budget = 60;
  return cfg;
}

TEST(MemeticGa, ImprovesAndMonotone) {
  MemeticGa ga(problem(), config());
  const GaResult result = ga.run();
  EXPECT_LT(result.best_objective, result.history.front());
  for (std::size_t i = 1; i < result.history.size(); ++i) {
    EXPECT_LE(result.history[i], result.history[i - 1]);
  }
}

TEST(MemeticGa, Deterministic) {
  MemeticGa a(problem(), config(9));
  MemeticGa b(problem(), config(9));
  EXPECT_EQ(a.run().history, b.run().history);
}

TEST(MemeticGa, AccountsLocalSearchEvaluations) {
  MemeticConfig cfg = config();
  MemeticGa with(problem(), cfg);
  cfg.interval = 0;  // no local search waves
  MemeticGa without(problem(), cfg);
  EXPECT_GT(with.run().evaluations, without.run().evaluations);
}

TEST(MemeticGa, BeatsOrMatchesPlainGaAtSameSeed) {
  // At the same generation budget, adding local search should not hurt
  // the final best (it only ever replaces individuals with better ones).
  MemeticConfig cfg = config(5);
  MemeticGa memetic(problem(), cfg);
  const double memetic_best = memetic.run().best_objective;

  SimpleGa plain(problem(), cfg.base);
  const double plain_best = plain.run().best_objective;
  EXPECT_LE(memetic_best, plain_best * 1.01);
}

TEST(MemeticGa, ValidBestGenome) {
  auto js = std::make_shared<JobShopProblem>(sched::ft06().instance);
  MemeticConfig cfg = config(3);
  MemeticGa ga(js, cfg);
  const GaResult result = ga.run();
  EXPECT_TRUE(genome_valid(result.best, js->traits()));
  EXPECT_GE(result.best_objective, 55.0);
}

TEST(MemeticGa, RedirectToggleRuns) {
  MemeticConfig cfg = config(7);
  cfg.use_redirect = false;
  MemeticGa ga(problem(), cfg);
  const GaResult result = ga.run();
  EXPECT_GT(result.evaluations, 0);
}

}  // namespace
}  // namespace psga::ga
