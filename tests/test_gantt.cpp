#include "src/sched/gantt.h"

#include <gtest/gtest.h>

#include "src/par/rng.h"
#include "src/sched/classics.h"

namespace psga::sched {
namespace {

TEST(Gantt, RendersOneRowPerMachine) {
  Schedule s;
  s.ops = {
      {0, 0, 0, 0, 10},
      {1, 0, 1, 0, 5},
  };
  const std::string out = render_gantt(s, 2, {.width = 20});
  EXPECT_NE(out.find("M0 "), std::string::npos);
  EXPECT_NE(out.find("M1 "), std::string::npos);
  // Job symbols painted.
  EXPECT_NE(out.find('0'), std::string::npos);
  EXPECT_NE(out.find('1'), std::string::npos);
}

TEST(Gantt, FullSpanOpCoversRow) {
  Schedule s;
  s.ops = {{0, 0, 0, 0, 100}};
  const std::string out = render_gantt(s, 1, {.width = 20, .show_axis = false});
  // The single op spans the whole makespan: no idle dots inside the bars.
  EXPECT_EQ(out.find('.'), std::string::npos);
}

TEST(Gantt, IdleShowsAsDots) {
  Schedule s;
  s.ops = {
      {0, 0, 0, 0, 10},
      {1, 0, 0, 90, 100},
  };
  const std::string out = render_gantt(s, 1, {.width = 40, .show_axis = false});
  EXPECT_NE(out.find('.'), std::string::npos);
}

TEST(Gantt, AxisShowsMakespan) {
  Schedule s;
  s.ops = {{0, 0, 0, 0, 123}};
  const std::string out = render_gantt(s, 1, {.width = 30});
  EXPECT_NE(out.find("123"), std::string::npos);
}

TEST(Gantt, EmptyScheduleRendersEmptyRows) {
  const std::string out = render_gantt(Schedule{}, 2, {.width = 12});
  EXPECT_NE(out.find("M0 "), std::string::npos);
  EXPECT_NE(out.find("M1 "), std::string::npos);
}

TEST(Gantt, ManyJobsUseDistinctSymbolClasses) {
  Schedule s;
  // Jobs 5, 15, 40 -> '5', 'f', 'E'.
  s.ops = {
      {5, 0, 0, 0, 10},
      {15, 0, 1, 0, 10},
      {40, 0, 2, 0, 10},
  };
  const std::string out = render_gantt(s, 3, {.width = 15, .show_axis = false});
  EXPECT_NE(out.find('5'), std::string::npos);
  EXPECT_NE(out.find('f'), std::string::npos);
  EXPECT_NE(out.find('E'), std::string::npos);
}

TEST(Gantt, Ft06ScheduleRendersWithoutOverlapArtifacts) {
  par::Rng rng(1);
  const auto seq = random_operation_sequence(ft06().instance, rng);
  const Schedule s = decode_operation_based(ft06().instance, seq);
  const std::string out = render_gantt(s, 6, {.width = 60});
  // 6 machine rows + axis.
  int rows = 0;
  for (char c : out) {
    if (c == '\n') ++rows;
  }
  EXPECT_EQ(rows, 7);
}

}  // namespace
}  // namespace psga::sched
