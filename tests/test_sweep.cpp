// The sweep subsystem's lockdown: grid expansion (axis cross-product
// order, zipped group axes, deterministic seed derivation), JSONL
// telemetry round-trips, fail-soft cell errors, and the headline
// invariant — a parallel sweep is bit-identical to a serial one.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/exp/aggregate.h"
#include "src/exp/json.h"
#include "src/exp/report_render.h"
#include "src/exp/sweep_runner.h"
#include "src/exp/sweep_spec.h"
#include "src/exp/telemetry.h"
#include "src/ga/problems.h"
#include "src/ga/solver.h"
#include "src/sched/taillard.h"

#ifndef PSGA_DATA_DIR
#define PSGA_DATA_DIR "data"
#endif

namespace psga::exp {
namespace {

std::string data_path(const std::string& file) {
  return std::string(PSGA_DATA_DIR) + "/" + file;
}

// --- Json -------------------------------------------------------------------

TEST(Json, DumpParseRoundTripsValues) {
  Json line = Json::object();
  line.set("event", Json::string("cell"))
      .set("ok", Json::boolean(true))
      .set("best", Json::number(1278.5))
      .set("seed", Json::uinteger(0xdeadbeefcafef00dULL))
      .set("delta", Json::integer(-42))
      .set("tags", Json::array().push(Json::string("a\"b\\c\n")))
      .set("nothing", Json::null());
  const Json parsed = Json::parse(line.dump());
  EXPECT_EQ(parsed.string_or("event", ""), "cell");
  EXPECT_TRUE(parsed.find("ok")->as_bool());
  EXPECT_DOUBLE_EQ(parsed.number_or("best", 0.0), 1278.5);
  EXPECT_EQ(parsed.find("seed")->as_u64(), 0xdeadbeefcafef00dULL);
  EXPECT_EQ(parsed.find("delta")->as_i64(), -42);
  EXPECT_EQ(parsed.find("tags")->items().at(0).as_string(), "a\"b\\c\n");
  EXPECT_EQ(parsed.find("nothing")->kind(), Json::Kind::kNull);
}

TEST(Json, ExactU64SurvivesWhereDoubleWouldNot) {
  // 2^64 - 59 is not representable as a double; the integer twin must
  // carry it exactly through dump + parse.
  const std::uint64_t big = 18446744073709551557ULL;
  const Json parsed = Json::parse(Json::uinteger(big).dump());
  EXPECT_EQ(parsed.as_u64(), big);
}

TEST(Json, MaxDigitsDoubleRoundTrip) {
  const double value = 1234.5678901234567;
  EXPECT_EQ(Json::parse(Json::number(value).dump()).as_number(), value);
}

TEST(Json, Int64MinRoundTripsWithoutOverflow) {
  const Json parsed = Json::parse("-9223372036854775808");
  EXPECT_EQ(parsed.as_i64(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(parsed.dump(), "-9223372036854775808");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse("{\"a\":}"), std::invalid_argument);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), std::invalid_argument);
  EXPECT_THROW(Json::parse("[1,2"), std::invalid_argument);
  EXPECT_THROW(Json::parse("\"unterminated"), std::invalid_argument);
  EXPECT_THROW(Json::parse("\"\\uzzzz\""), std::invalid_argument);
  EXPECT_THROW(Json::parse("\"\\u12gz\""), std::invalid_argument);
  EXPECT_EQ(Json::parse("\"\\u000a\"").as_string(), "\n");
}

// --- SweepSpec parsing ------------------------------------------------------

TEST(SweepSpec, ParsesBaseAxesAndDirectives) {
  const SweepSpec spec = SweepSpec::parse(
      "engine=island pop=20 islands=6\n"
      "topology={ring,grid,full}  # axis comment\n"
      "interval={5,20}\n"
      "@instances=ta001,ta002\n"
      "@reps=3 @seed=99 @generations=40 @reference=1278\n");
  EXPECT_EQ(spec.base, "engine=island pop=20 islands=6");
  ASSERT_EQ(spec.axes.size(), 2u);
  EXPECT_EQ(spec.axes[0].label, "topology");
  EXPECT_EQ(spec.axes[0].values,
            (std::vector<std::string>{"ring", "grid", "full"}));
  EXPECT_FALSE(spec.axes[0].grouped);
  EXPECT_EQ(spec.axes[1].label, "interval");
  EXPECT_EQ(spec.instances, (std::vector<std::string>{"ta001", "ta002"}));
  EXPECT_EQ(spec.reps, 3);
  EXPECT_EQ(spec.seed, 99u);
  EXPECT_EQ(spec.stop.max_generations, 40);
  EXPECT_DOUBLE_EQ(spec.reference, 1278.0);
  EXPECT_EQ(spec.configs(), 6);
}

TEST(SweepSpec, GroupAxisZipsKeys) {
  const SweepSpec spec = SweepSpec::parse(
      "engine=island {islands=2 pop=60,islands=3 pop=40,islands=4 pop=30}");
  ASSERT_EQ(spec.axes.size(), 1u);
  EXPECT_TRUE(spec.axes[0].grouped);
  EXPECT_EQ(spec.axes[0].label, "islands+pop");
  EXPECT_EQ(spec.axes[0].values.size(), 3u);
  EXPECT_EQ(spec.axes[0].token(1), "islands=3 pop=40");
}

TEST(SweepSpec, NonGenerationBudgetsLiftTheGenerationCap) {
  const SweepSpec spec = SweepSpec::parse("engine=simple @evals=5000");
  EXPECT_EQ(spec.stop.max_generations, std::numeric_limits<int>::max());
  EXPECT_EQ(spec.stop.max_evaluations, 5000);
  // Default when nothing is set: the shared 100-generation default.
  EXPECT_EQ(SweepSpec::parse("engine=simple").stop.max_generations, 100);
}

TEST(SweepSpec, RejectsMalformedGrids) {
  EXPECT_THROW(SweepSpec::parse("topology={ring"), std::invalid_argument);
  EXPECT_THROW(SweepSpec::parse("topology=ring}"), std::invalid_argument);
  EXPECT_THROW(SweepSpec::parse("topology={}"), std::invalid_argument);
  EXPECT_THROW(SweepSpec::parse("topology={a,,b}"), std::invalid_argument);
  EXPECT_THROW(SweepSpec::parse("@bogus=1"), std::invalid_argument);
  EXPECT_THROW(SweepSpec::parse("@reps=0"), std::invalid_argument);
  EXPECT_THROW(SweepSpec::parse("@reps=abc"), std::invalid_argument);
  EXPECT_THROW(SweepSpec::parse("loneword"), std::invalid_argument);
  EXPECT_THROW(SweepSpec::parse("{ring,grid}"), std::invalid_argument);
  try {
    SweepSpec::parse("engine=island topology={ring");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("topology={ring"),
              std::string::npos);
  }
}

TEST(SweepSpec, CommentsWorkInsideGroupAxes) {
  const SweepSpec spec = SweepSpec::parse(
      "engine=island {islands=2 pop=60, # fixed total 120\n"
      "islands=4 pop=30}");
  ASSERT_EQ(spec.axes.size(), 1u);
  EXPECT_EQ(spec.axes[0].values,
            (std::vector<std::string>{"islands=2 pop=60", "islands=4 pop=30"}));
}

TEST(SweepSpec, ExpandRejectsNonPositiveReps) {
  SweepSpec spec = SweepSpec::parse("engine=simple @instances=ta001");
  spec.reps = 0;  // CLI --reps override path bypasses parse() validation
  EXPECT_THROW(spec.expand(), std::invalid_argument);
}

TEST(SweepSpec, ParseFileSplitsSections) {
  const std::vector<SweepSpec> sweeps = SweepSpec::parse_file(
      "# leading comment\n"
      "engine=simple pop=10\n"
      "[alpha]\n"
      "engine=island islands=2\n"
      "topology={ring,full}\n"
      "[beta]\n"
      "engine=cellular width=4 height=4\n");
  ASSERT_EQ(sweeps.size(), 3u);
  EXPECT_EQ(sweeps[0].name, "sweep");
  EXPECT_EQ(sweeps[0].base, "engine=simple pop=10");
  EXPECT_EQ(sweeps[1].name, "alpha");
  EXPECT_EQ(sweeps[1].axes.size(), 1u);
  EXPECT_EQ(sweeps[2].name, "beta");
}

TEST(SweepSpec, StudyFileStaysInSyncWithEmbeddedExample) {
  // examples/parameter_study.cpp embeds the same sections as
  // sweeps/parameter_study.sweep so `psga_sweep` reproduces its tables;
  // this pins the two down against drifting apart. Repo root derives
  // from the compiled-in data directory.
  const std::string root =
      std::string(PSGA_DATA_DIR).substr(0, std::string(PSGA_DATA_DIR).rfind("data"));
  auto slurp = [](const std::string& path) {
    std::ifstream file(path);
    EXPECT_TRUE(file.good()) << path;
    std::ostringstream text;
    text << file.rdbuf();
    return text.str();
  };
  const std::string sweep_file = slurp(root + "sweeps/parameter_study.sweep");
  const std::string example_src = slurp(root + "examples/parameter_study.cpp");
  // The example's one raw string literal holds its embedded study spec.
  const std::size_t begin = example_src.find("R\"(");
  const std::size_t end = example_src.find(")\"", begin);
  ASSERT_NE(begin, std::string::npos);
  ASSERT_NE(end, std::string::npos);
  const std::string embedded =
      example_src.substr(begin + 3, end - begin - 3);
  const std::vector<SweepSpec> from_file = SweepSpec::parse_file(sweep_file);
  const std::vector<SweepSpec> from_example = SweepSpec::parse_file(embedded);
  ASSERT_EQ(from_file.size(), from_example.size());
  for (std::size_t i = 0; i < from_file.size(); ++i) {
    EXPECT_EQ(from_file[i], from_example[i]) << from_file[i].name;
  }
}

// --- expansion & seeds ------------------------------------------------------

TEST(SweepExpand, CrossProductOrderFirstAxisSlowest) {
  SweepSpec spec = SweepSpec::parse(
      "engine=island topology={ring,full} interval={1,5,9} @reps=2");
  spec.instances = {"instA", "instB"};
  const std::vector<SweepCell> cells = spec.expand();
  // 2 topologies x 3 intervals x 2 instances x 2 reps.
  ASSERT_EQ(cells.size(), 24u);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, static_cast<int>(i));
  }
  // First axis (topology) varies slowest; instances then reps innermost.
  EXPECT_EQ(cells[0].axis_values,
            (std::vector<std::string>{"ring", "1"}));
  EXPECT_EQ(cells[0].instance, "instA");
  EXPECT_EQ(cells[0].rep, 0);
  EXPECT_EQ(cells[1].rep, 1);
  EXPECT_EQ(cells[2].instance, "instB");
  EXPECT_EQ(cells[4].axis_values,
            (std::vector<std::string>{"ring", "5"}));
  EXPECT_EQ(cells[12].axis_values,
            (std::vector<std::string>{"full", "1"}));
  // The cell spec carries base + axis tokens + the derived seed.
  EXPECT_EQ(cells[0].spec,
            "engine=island topology=ring interval=1 seed=" +
                std::to_string(cells[0].seed));
}

TEST(SweepExpand, SeedsAreDeterministicAndDistinct) {
  const SweepSpec spec = SweepSpec::parse(
      "engine=simple pop={10,20} @reps=3 @seed=7");
  const std::vector<SweepCell> a = spec.expand();
  const std::vector<SweepCell> b = spec.expand();
  ASSERT_EQ(a.size(), 6u);
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seed, b[i].seed);  // pure function of the spec
    EXPECT_EQ(a[i].seed, derive_seed(7, static_cast<std::uint64_t>(i),
                                     static_cast<std::uint64_t>(a[i].rep)));
    seeds.insert(a[i].seed);
  }
  EXPECT_EQ(seeds.size(), a.size());
  // Changing the sweep seed moves every cell seed.
  SweepSpec reseeded = spec;
  reseeded.seed = 8;
  EXPECT_NE(reseeded.expand()[0].seed, a[0].seed);
}

TEST(SweepExpand, CrnPairsConfigurationsOnOneSeedSeries) {
  const char* grid =
      "engine=island topology={ring,full} @instances=ta001,ta002 @reps=2 "
      "@seed=3 @crn=on";
  const std::vector<SweepCell> cells = SweepSpec::parse(grid).expand();
  ASSERT_EQ(cells.size(), 8u);
  for (const SweepCell& cell : cells) {
    // Same (instance, rep) -> same seed in every configuration.
    EXPECT_EQ(cell.seed, cells[static_cast<std::size_t>(
                                   cell.instance_index * 2 + cell.rep)]
                             .seed);
  }
  // Distinct (instance, rep) pairs still get distinct seeds.
  std::set<std::uint64_t> series;
  for (int i = 0; i < 4; ++i) series.insert(cells[static_cast<std::size_t>(i)].seed);
  EXPECT_EQ(series.size(), 4u);
  // Default (no @crn) keeps every cell independent.
  SweepSpec independent = SweepSpec::parse(grid);
  independent.crn = false;
  const std::vector<SweepCell> plain = independent.expand();
  EXPECT_NE(plain[0].seed, plain[4].seed);
}

TEST(SweepExpand, DerivedSeedOverridesBaseSeedToken) {
  const SweepSpec spec =
      SweepSpec::parse("engine=simple seed=123 pop=10 @seed=9");
  const SweepCell cell = spec.expand()[0];
  // SolverSpec::parse applies tokens left to right, so the trailing
  // derived seed wins over the fixed seed=123.
  EXPECT_EQ(ga::SolverSpec::parse(cell.spec).seed, cell.seed);
}

TEST(SweepExpand, GlobExpandsAndSorts) {
  SweepSpec spec = SweepSpec::parse("engine=simple");
  spec.instances = {data_path("ta00*.fsp")};
  const std::vector<std::string> instances = spec.expand_instances();
  ASSERT_EQ(instances.size(), 9u);  // ta001..ta009 (ta010 has a 1)
  EXPECT_EQ(instances.front(), data_path("ta001.fsp"));
  EXPECT_EQ(instances.back(), data_path("ta009.fsp"));
  spec.instances = {data_path("nope*.fsp")};
  EXPECT_THROW(spec.expand(), std::invalid_argument);
}

// --- runner -----------------------------------------------------------------

SweepSpec tiny_island_sweep() {
  SweepSpec spec = SweepSpec::parse(
      "engine=island islands=2 pop=8\n"
      "topology={ring,full}\n"
      "interval={1,3}\n"
      "@instances=ta001,ta002 @reps=2 @generations=4 @seed=11");
  return spec;
}

TEST(SweepRunner, RunsTheGridAndAggregates) {
  const SweepResult result = run_sweep(tiny_island_sweep());
  ASSERT_EQ(result.cells.size(), 16u);  // 4 configs x 2 instances x 2 reps
  EXPECT_EQ(result.failed, 0);
  for (const CellResult& cell : result.cells) {
    ASSERT_TRUE(cell.ok) << cell.error;
    EXPECT_GT(cell.result.best_objective, 0.0);
    EXPECT_EQ(cell.result.generations, 4);
  }
  const SweepSummary summary = summarize(result);
  ASSERT_EQ(summary.groups.size(), 8u);  // 4 configs x 2 instances
  for (const GroupSummary& group : summary.groups) {
    EXPECT_EQ(group.best_objectives.size(), 2u);
    EXPECT_GE(group.mean, group.best);
  }
  const stats::Table table = summary_table(result.spec, summary);
  EXPECT_NE(table.to_string().find("topology"), std::string::npos);
}

TEST(SweepRunner, ParallelSweepBitIdenticalToSerial) {
  SweepOptions serial;
  serial.threads = 1;
  const SweepResult a = run_sweep(tiny_island_sweep(), serial);
  SweepOptions parallel;
  parallel.threads = 4;
  const SweepResult b = run_sweep(tiny_island_sweep(), parallel);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    ASSERT_EQ(a.cells[i].ok, b.cells[i].ok);
    EXPECT_EQ(a.cells[i].cell.seed, b.cells[i].cell.seed);
    EXPECT_EQ(a.cells[i].result.best_objective,
              b.cells[i].result.best_objective)
        << "cell " << i << " diverged between serial and parallel sweeps";
    EXPECT_EQ(a.cells[i].result.evaluations, b.cells[i].result.evaluations);
    EXPECT_EQ(a.cells[i].result.history, b.cells[i].result.history);
  }
  // The rendered summary tables are byte-identical.
  EXPECT_EQ(summary_table(a.spec, summarize(a)).to_string(),
            summary_table(b.spec, summarize(b)).to_string());
}

TEST(SweepRunner, CustomResolverAndProgress) {
  SweepSpec spec = SweepSpec::parse(
      "engine=simple pop=10 @instances=generated @reps=2 @generations=3");
  SweepOptions options;
  const auto instance = sched::make_taillard(sched::taillard_20x5()[0]);
  options.resolve = [&](const std::string& name) -> ga::ProblemPtr {
    EXPECT_EQ(name, "generated");
    return std::make_shared<ga::FlowShopProblem>(instance);
  };
  int calls = 0;
  options.progress = [&](const CellResult& cell, int done, int total) {
    EXPECT_TRUE(cell.ok);
    EXPECT_EQ(total, 2);
    EXPECT_EQ(done, ++calls);
  };
  const SweepResult result = run_sweep(std::move(spec), options);
  EXPECT_EQ(result.failed, 0);
  EXPECT_EQ(calls, 2);
}

// --- fail-soft --------------------------------------------------------------

TEST(SweepRunner, MalformedCellSpecIsCapturedNotFatal) {
  // engine axis includes an unregistered engine and a malformed token
  // value: those cells fail, the others complete.
  SweepSpec spec = SweepSpec::parse(
      "pop=8 {engine=simple,engine=warp-drive,engine=simple pop=oops}\n"
      "@instances=ta001 @reps=2 @generations=3");
  std::ostringstream telemetry;
  TelemetrySink sink(telemetry);
  SweepOptions options;
  options.telemetry = &sink;
  const SweepResult result = run_sweep(spec, options);
  ASSERT_EQ(result.cells.size(), 6u);
  EXPECT_EQ(result.failed, 4);
  EXPECT_TRUE(result.cells[0].ok);
  EXPECT_TRUE(result.cells[1].ok);
  EXPECT_FALSE(result.cells[2].ok);
  EXPECT_NE(result.cells[2].error.find("warp-drive"), std::string::npos);
  EXPECT_FALSE(result.cells[4].ok);
  EXPECT_NE(result.cells[4].error.find("oops"), std::string::npos);
  // The telemetry records the structured error.
  int error_records = 0;
  std::istringstream lines(telemetry.str());
  std::string line;
  while (std::getline(lines, line)) {
    const Json record = Json::parse(line);
    if (record.string_or("event", "") == "cell" &&
        !record.find("ok")->as_bool()) {
      ++error_records;
      EXPECT_FALSE(record.string_or("error", "").empty());
    }
  }
  EXPECT_EQ(error_records, 4);
  // The summary still renders, with a failed column.
  const stats::Table table = summary_table(result.spec, summarize(result));
  EXPECT_NE(table.to_string().find("failed"), std::string::npos);
}

TEST(SweepRunner, MissingInstanceFileIsCapturedNotFatal) {
  SweepSpec spec = SweepSpec::parse("engine=simple pop=8 @generations=2");
  spec.instances = {data_path("ta001.fsp"), data_path("missing.fsp")};
  const SweepResult result = run_sweep(spec);
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_TRUE(result.cells[0].ok);
  EXPECT_FALSE(result.cells[1].ok);
  EXPECT_FALSE(result.cells[1].error.empty());
  EXPECT_EQ(result.failed, 1);
}

// --- problem-side tokens ----------------------------------------------------

TEST(SweepRunner, MultiFamilySweepSpansProblems) {
  // One grid over two problem families: the zipped axis moves the
  // problem and its instance together, all through ProblemSpec.
  SweepSpec spec = SweepSpec::parse(
      "engine=simple pop=8\n"
      "{problem=flowshop instance=ta001,problem=jobshop instance=ft06}\n"
      "@reps=1 @generations=2");
  std::ostringstream telemetry;
  TelemetrySink sink(telemetry);
  SweepOptions options;
  options.telemetry = &sink;
  const SweepResult result = run_sweep(spec, options);
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_EQ(result.failed, 0);
  // The canonical problem spec lands in the RunResult for provenance...
  EXPECT_EQ(result.cells[0].result.problem,
            "problem=flowshop instance=ta001");
  EXPECT_EQ(result.cells[1].result.problem, "problem=jobshop instance=ft06");
  // ...and in every cell telemetry record.
  int cell_records = 0;
  std::istringstream lines(telemetry.str());
  std::string line;
  while (std::getline(lines, line)) {
    const Json record = Json::parse(line);
    if (record.string_or("event", "") == "cell") {
      ++cell_records;
      EXPECT_FALSE(record.string_or("problem", "").empty());
    }
  }
  EXPECT_EQ(cell_records, 2);
}

TEST(SweepRunner, UnresolvableInstanceErrorCarriesCanonicalSpec) {
  SweepSpec spec = SweepSpec::parse(
      "engine=simple pop=8 @instances=nope.xyz @generations=2");
  const SweepResult result = run_sweep(spec);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_FALSE(result.cells[0].ok);
  EXPECT_NE(result.cells[0].error.find(
                "[problem spec: problem=flowshop instance=nope.xyz]"),
            std::string::npos)
      << result.cells[0].error;
}

TEST(SweepRunner, InstanceTokenConflictingWithAtInstancesFailsSoft) {
  SweepSpec spec = SweepSpec::parse(
      "engine=simple pop=8 instance=ta001 @instances=ta002 @generations=2");
  const SweepResult result = run_sweep(spec);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_FALSE(result.cells[0].ok);
  EXPECT_NE(result.cells[0].error.find("conflicts"), std::string::npos);
}

TEST(SweepRunner, GenInstanceTokenRunsWithoutResolver) {
  SweepSpec spec = SweepSpec::parse(
      "engine=simple pop=8 problem=openshop "
      "instance=gen:jobs=4,machines=3,seed=2 @reps=2 @generations=2");
  const SweepResult result = run_sweep(spec);
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_EQ(result.failed, 0);
  // Both reps share one resolved problem (same canonical spec).
  EXPECT_EQ(result.cells[0].result.problem, result.cells[1].result.problem);
}

TEST(SweepRunner, ProblemTokensUnderCustomResolverFailLoudly) {
  // A custom resolver owns instance semantics; a problem-side axis would
  // otherwise vary nothing while the summary reports it varying.
  SweepSpec spec = SweepSpec::parse(
      "engine=simple pop=8 criterion={makespan,total-flow} "
      "@instances=generated @generations=2");
  SweepOptions options;
  const auto instance = sched::make_taillard(sched::taillard_20x5()[0]);
  options.resolve = [&](const std::string&) -> ga::ProblemPtr {
    return ga::make_problem(instance);
  };
  const SweepResult result = run_sweep(spec, options);
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_EQ(result.failed, 2);
  EXPECT_NE(result.cells[0].error.find("do not apply under a custom resolver"),
            std::string::npos)
      << result.cells[0].error;
}

TEST(SweepRunner, DefaultResolverRoutesThroughProblemRegistry) {
  EXPECT_NE(default_resolver("ta001"), nullptr);
  EXPECT_NE(default_resolver(data_path("ta001.fsp")), nullptr);
  EXPECT_NE(default_resolver("ft06"), nullptr);  // classics resolve by name
  EXPECT_THROW(default_resolver("mystery"), std::invalid_argument);
  EXPECT_THROW(default_resolver(""), std::invalid_argument);
}

// --- telemetry --------------------------------------------------------------

TEST(Telemetry, JsonlRoundTripsCellRecords) {
  SweepSpec spec = SweepSpec::parse(
      "engine=island islands=2 pop=8 eval_cache=unbounded\n"
      "topology={ring,full}\n"
      "@instances=ta001 @reps=2 @generations=3 @seed=5");
  std::ostringstream telemetry;
  TelemetrySink sink(telemetry);
  SweepOptions options;
  options.telemetry = &sink;
  const SweepResult result = run_sweep(spec, options);
  ASSERT_EQ(result.failed, 0);

  int cell_records = 0;
  int generation_records = 0;
  int sweep_begin = 0;
  int sweep_end = 0;
  std::istringstream lines(telemetry.str());
  std::string line;
  while (std::getline(lines, line)) {
    const Json record = Json::parse(line);  // every line parses
    const std::string event = record.string_or("event", "");
    if (event == "sweep_begin") {
      ++sweep_begin;
      EXPECT_EQ(record.number_or("cells", 0), 4);
      EXPECT_EQ(record.find("axes")->items().size(), 1u);
    } else if (event == "generation") {
      ++generation_records;
    } else if (event == "sweep_end") {
      ++sweep_end;
      EXPECT_EQ(record.number_or("failed", -1), 0);
    } else if (event == "cell") {
      ++cell_records;
      const int index = static_cast<int>(record.number_or("cell", -1));
      ASSERT_GE(index, 0);
      const CellResult& expected =
          result.cells[static_cast<std::size_t>(index)];
      // Exact round-trip: u64 seed, double objective, counters.
      EXPECT_EQ(record.find("seed")->as_u64(), expected.cell.seed);
      EXPECT_EQ(record.number_or("best_objective", -1),
                expected.result.best_objective);
      EXPECT_EQ(record.number_or("evaluations", -1),
                static_cast<double>(expected.result.evaluations));
      EXPECT_EQ(record.string_or("spec", ""), expected.cell.spec);
      EXPECT_EQ(record.find("axes")->string_or("topology", ""),
                expected.cell.axis_values[0]);
      ASSERT_NE(record.find("cache"), nullptr);
      EXPECT_EQ(record.find("cache")->number_or("hits", -1),
                static_cast<double>(expected.result.cache->hits));
    }
  }
  EXPECT_EQ(sweep_begin, 1);
  EXPECT_EQ(sweep_end, 1);
  EXPECT_EQ(cell_records, 4);
  // init + 3 generations per cell, stride 1.
  EXPECT_EQ(generation_records, 4 * 4);
}

TEST(Telemetry, EveryZeroSuppressesGenerationStream) {
  SweepSpec spec = SweepSpec::parse(
      "engine=simple pop=8 @instances=ta001 @generations=3");
  std::ostringstream telemetry;
  TelemetrySink sink(telemetry);
  SweepOptions options;
  options.telemetry = &sink;
  options.telemetry_every = 0;
  run_sweep(spec, options);
  std::istringstream lines(telemetry.str());
  std::string line;
  while (std::getline(lines, line)) {
    EXPECT_NE(Json::parse(line).string_or("event", ""), "generation");
  }
}

// --- aggregation ------------------------------------------------------------

TEST(Aggregate, ComputesStatsAndRpd) {
  SweepSpec spec = SweepSpec::parse("engine=simple x={a,b} @reps=2");
  spec.reference = 100.0;
  SweepResult result;
  result.spec = spec;
  const std::vector<SweepCell> cells = [&] {
    SweepSpec layout = spec;
    layout.base = "";  // layout only; results are injected below
    return layout.expand();
  }();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    CellResult cell;
    cell.cell = cells[i];
    cell.ok = true;
    cell.result.best_objective = 110.0 + 10.0 * static_cast<double>(i);
    cell.result.evaluations = 100;
    cell.result.history = {120.0, cell.result.best_objective};
    result.cells.push_back(std::move(cell));
  }
  const SweepSummary summary = summarize(result);
  ASSERT_EQ(summary.groups.size(), 2u);
  EXPECT_DOUBLE_EQ(summary.groups[0].best, 110.0);
  EXPECT_DOUBLE_EQ(summary.groups[0].mean, 115.0);
  EXPECT_DOUBLE_EQ(summary.groups[0].mean_rpd, 15.0);  // (10% + 20%) / 2
  EXPECT_DOUBLE_EQ(summary.groups[1].mean, 135.0);
  ASSERT_EQ(summary.groups[0].mean_history.size(), 2u);
  EXPECT_DOUBLE_EQ(summary.groups[0].mean_history[0], 120.0);
  EXPECT_DOUBLE_EQ(summary.groups[0].mean_history[1], 115.0);
}

// --- non-finite JSON --------------------------------------------------------

TEST(Json, NonFiniteDoublesRoundTripAsSentinels) {
  const double inf = std::numeric_limits<double>::infinity();
  // Non-finite doubles serialize as sentinel strings, not null: a
  // target=inf budget or a NaN objective must survive telemetry.
  EXPECT_EQ(Json::number(inf).dump(), "\"inf\"");
  EXPECT_EQ(Json::number(-inf).dump(), "\"-inf\"");
  EXPECT_EQ(Json::number(std::nan("")).dump(), "\"nan\"");
  const Json pos = Json::parse("\"inf\"");
  EXPECT_EQ(pos.kind(), Json::Kind::kNumber);
  EXPECT_EQ(pos.as_number(), inf);
  EXPECT_EQ(Json::parse("\"-inf\"").as_number(), -inf);
  EXPECT_TRUE(std::isnan(Json::parse("\"nan\"").as_number()));
  // Full object round trip through dump + parse.
  const Json record = Json::parse(Json::object()
                                      .set("hi", Json::number(inf))
                                      .set("lo", Json::number(-inf))
                                      .set("bad", Json::number(std::nan("")))
                                      .dump());
  EXPECT_EQ(record.number_or("hi", 0.0), inf);
  EXPECT_EQ(record.number_or("lo", 0.0), -inf);
  EXPECT_TRUE(std::isnan(record.number_or("bad", 0.0)));
  // Ordinary strings are untouched (only the exact sentinels promote).
  EXPECT_EQ(Json::parse("\"infinity\"").as_string(), "infinity");
  EXPECT_EQ(Json::parse("\"NaN\"").as_string(), "NaN");
}

// --- gen: brace expansion ---------------------------------------------------

TEST(SweepSpec, GenBraceExpansionCrossProduct) {
  const SweepSpec spec = SweepSpec::parse(
      "engine=simple pop=8\n"
      "instance=gen:jobs={10,20},machines={3,5},seed=1\n");
  ASSERT_EQ(spec.axes.size(), 1u);
  const SweepAxis& axis = spec.axes[0];
  EXPECT_TRUE(axis.grouped);
  EXPECT_EQ(axis.label, "jobs+machines");
  ASSERT_EQ(axis.values.size(), 4u);
  // First group varies slowest, like every other axis cross-product.
  EXPECT_EQ(axis.values[0], "instance=gen:jobs=10,machines=3,seed=1");
  EXPECT_EQ(axis.values[1], "instance=gen:jobs=10,machines=5,seed=1");
  EXPECT_EQ(axis.values[2], "instance=gen:jobs=20,machines=3,seed=1");
  EXPECT_EQ(axis.values[3], "instance=gen:jobs=20,machines=5,seed=1");
  // Display values are the compact picks, not the full token.
  ASSERT_EQ(axis.display.size(), 4u);
  EXPECT_EQ(axis.value_label(0), "10/3");
  EXPECT_EQ(axis.value_label(3), "20/5");
  // The expansion runs through the ordinary grid machinery.
  const std::vector<SweepCell> cells = spec.expand();
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0].spec, "engine=simple pop=8 "
                           "instance=gen:jobs=10,machines=3,seed=1 seed=" +
                               std::to_string(cells[0].seed));
}

TEST(SweepSpec, GenBraceExpansionSingleGroup) {
  const SweepSpec spec =
      SweepSpec::parse("engine=simple instance=gen:jobs={20,50,100},seed=7");
  ASSERT_EQ(spec.axes.size(), 1u);
  EXPECT_EQ(spec.axes[0].label, "jobs");
  EXPECT_EQ(spec.axes[0].display,
            (std::vector<std::string>{"20", "50", "100"}));
  EXPECT_EQ(spec.axes[0].values[2], "instance=gen:jobs=100,seed=7");
}

TEST(SweepSpec, GenBraceExpansionCellsSolve) {
  const SweepSpec spec = SweepSpec::parse(
      "engine=simple pop=8 problem=openshop\n"
      "instance=gen:jobs={3,4},machines=3,seed=2\n"
      "@reps=1 @generations=2");
  const SweepResult result = run_sweep(spec);
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_EQ(result.failed, 0);
  EXPECT_NE(result.cells[0].result.problem, result.cells[1].result.problem);
}

TEST(SweepSpec, GenBraceExpansionRejectsMalformed) {
  // Unbalanced and nested braces fail loudly, naming the token.
  EXPECT_THROW(SweepSpec::parse("instance=gen:jobs={10,20"),
               std::invalid_argument);
  EXPECT_THROW(SweepSpec::parse("instance=gen:jobs={1{0,2}0}"),
               std::invalid_argument);
  // A brace group must be a gen: subkey's value.
  EXPECT_THROW(SweepSpec::parse("instance=gen:{10,20}"),
               std::invalid_argument);
  // Braces past the first '=' in a non-gen: value are not an axis.
  try {
    SweepSpec::parse("engine=simple decoder=x{a,b}");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("gen:"), std::string::npos)
        << e.what();
  }
}

// --- cell hashes ------------------------------------------------------------

TEST(SweepCellHash, StableDistinctAndHex) {
  const std::vector<SweepCell> cells = tiny_island_sweep().expand();
  std::set<std::string> hashes;
  for (const SweepCell& cell : cells) {
    const std::string hex = sweep_cell_hash_hex("sweep", cell);
    // Pure function of (sweep, spec, instance, rep, seed).
    EXPECT_EQ(hex, sweep_cell_hash_hex("sweep", cell));
    EXPECT_EQ(hex.size(), 16u);
    EXPECT_EQ(hex.find_first_not_of("0123456789abcdef"), std::string::npos);
    // The sweep name participates: the same cell in a differently named
    // sweep must not be mistaken for finished on resume.
    EXPECT_NE(hex, sweep_cell_hash_hex("other", cell));
    hashes.insert(hex);
  }
  EXPECT_EQ(hashes.size(), cells.size());
  // Rep and seed each move the hash even with an identical spec string.
  SweepCell moved = cells[0];
  moved.rep = cells[0].rep + 1;
  EXPECT_NE(sweep_cell_hash_hex("sweep", moved),
            sweep_cell_hash_hex("sweep", cells[0]));
  moved = cells[0];
  moved.seed ^= 1;
  EXPECT_NE(sweep_cell_hash_hex("sweep", moved),
            sweep_cell_hash_hex("sweep", cells[0]));
}

// --- resume -----------------------------------------------------------------

/// Normalized cell records keyed by hash, `seconds` (the only
/// wall-clock field) stripped. Unparsable lines are skipped like every
/// telemetry consumer does.
std::map<std::string, std::string> cell_records_sans_seconds(
    const std::string& jsonl) {
  std::map<std::string, std::string> out;
  std::istringstream lines(jsonl);
  std::string line;
  while (std::getline(lines, line)) {
    Json record;
    try {
      record = Json::parse(line);
    } catch (const std::exception&) {
      continue;
    }
    if (record.string_or("event", "") != "cell") continue;
    Json normalized = Json::object();
    for (const Json::Member& member : record.members()) {
      if (member.first != "seconds") {
        normalized.set(member.first, member.second);
      }
    }
    out[record.string_or("hash", "")] = normalized.dump();
  }
  return out;
}

/// `jsonl` truncated right after its `keep`-th cell record, plus the
/// partial line a SIGKILL mid-write leaves behind.
std::string truncate_after_cells(const std::string& jsonl, int keep) {
  std::istringstream lines(jsonl);
  std::string line;
  std::string out;
  int cells = 0;
  while (cells < keep && std::getline(lines, line)) {
    out += line;
    out += '\n';
    if (Json::parse(line).string_or("event", "") == "cell") ++cells;
  }
  out += "{\"schema_version\":1,\"event\":\"cell\",\"hash\":\"dead";
  return out;
}

TEST(SweepResume, ScanSkipsGarbageAndKeysByHash) {
  std::istringstream in(
      "{\"event\":\"sweep_begin\",\"sweep\":\"s\"}\n"
      "{\"event\":\"cell\",\"hash\":\"00000000000000aa\",\"ok\":true}\n"
      "not json at all\n"
      "{\"event\":\"cell\",\"ok\":true}\n"  // no hash: pre-hash telemetry
      "{\"event\":\"cell\",\"hash\":\"00000000000000bb\",\"ok\":false,"
      "\"error\":\"x\"}\n"
      "{\"event\":\"cell\",\"hash\":\"trunc");
  const FinishedCells finished = scan_finished_cells(in);
  ASSERT_EQ(finished.size(), 2u);
  EXPECT_TRUE(finished.count("00000000000000aa"));
  // Failed cells count as finished: their failure is deterministic.
  EXPECT_TRUE(finished.count("00000000000000bb"));
}

TEST(SweepResume, ResumedRunMatchesUninterrupted) {
  // The uninterrupted baseline.
  std::ostringstream full_stream;
  SweepResult full;
  {
    TelemetrySink sink(full_stream);
    SweepOptions options;
    options.telemetry = &sink;
    full = run_sweep(tiny_island_sweep(), options);
  }
  ASSERT_EQ(full.failed, 0);
  ASSERT_EQ(full.cells.size(), 16u);

  // Kill after 5 finished cells (serial run: records land in index
  // order), leaving a ragged partial line.
  const std::string truncated = truncate_after_cells(full_stream.str(), 5);
  std::istringstream scan_in(truncated);
  const FinishedCells finished = scan_finished_cells(scan_in);
  ASSERT_EQ(finished.size(), 5u);

  // Resume: skip the finished cells, append the rest.
  std::ostringstream resumed_stream;
  SweepResult resumed;
  {
    TelemetrySink sink(resumed_stream);
    SweepOptions options;
    options.telemetry = &sink;
    options.resume = &finished;
    resumed = run_sweep(tiny_island_sweep(), options);
  }
  ASSERT_EQ(resumed.cells.size(), full.cells.size());
  for (std::size_t i = 0; i < full.cells.size(); ++i) {
    EXPECT_EQ(resumed.cells[i].resumed, i < 5u) << "cell " << i;
    EXPECT_TRUE(resumed.cells[i].ok);
    EXPECT_EQ(resumed.cells[i].result.best_objective,
              full.cells[i].result.best_objective)
        << "cell " << i;
    EXPECT_EQ(resumed.cells[i].result.evaluations,
              full.cells[i].result.evaluations);
  }
  // The summary table is byte-identical to the uninterrupted run's.
  EXPECT_EQ(summary_table(full.spec, summarize(full)).to_string(),
            summary_table(resumed.spec, summarize(resumed)).to_string());
  // Resumed cells write no telemetry, so truncated + resumed unions to
  // exactly the uninterrupted file's cell records (modulo seconds).
  EXPECT_EQ(cell_records_sans_seconds(truncated + resumed_stream.str()),
            cell_records_sans_seconds(full_stream.str()));
  // And the resumed stream holds only the 11 re-run cells.
  EXPECT_EQ(cell_records_sans_seconds(resumed_stream.str()).size(), 11u);
}

// --- report rendering -------------------------------------------------------

TEST(ReportRender, ParsesTelemetryIntoCellsAndCurves) {
  SweepSpec spec = SweepSpec::parse(
      "engine=island islands=2 pop=8 eval_cache=unbounded\n"
      "topology={ring,full}\n"
      "@instances=ta001 @reps=2 @generations=3 @seed=5 @reference=1278");
  std::ostringstream telemetry;
  {
    TelemetrySink sink(telemetry);
    SweepOptions options;
    options.telemetry = &sink;
    ASSERT_EQ(run_sweep(spec, options).failed, 0);
  }
  std::istringstream in(telemetry.str());
  const std::vector<SweepReport> reports = parse_telemetry(in);
  ASSERT_EQ(reports.size(), 1u);
  const SweepReport& report = reports[0];
  EXPECT_EQ(report.sweep, "sweep");
  EXPECT_EQ(report.declared_cells, 4);
  EXPECT_DOUBLE_EQ(report.reference, 1278.0);
  ASSERT_EQ(report.axes.size(), 1u);
  EXPECT_EQ(report.axes[0].first, "topology");
  ASSERT_EQ(report.cells.size(), 4u);
  for (const ReportCell& cell : report.cells) {
    EXPECT_TRUE(cell.ok);
    EXPECT_EQ(cell.hash.size(), 16u);
    ASSERT_TRUE(cell.cache.has_value());
    // init + 3 generations folded into the convergence curve, in order.
    ASSERT_EQ(cell.curve.size(), 4u);
    for (std::size_t i = 1; i < cell.curve.size(); ++i) {
      EXPECT_GT(cell.curve[i].first, cell.curve[i - 1].first);
      EXPECT_LE(cell.curve[i].second, cell.curve[i - 1].second);
    }
  }

  const std::string csv = render_csv(reports);
  EXPECT_NE(csv.find("# sweep sweep"), std::string::npos);
  EXPECT_NE(csv.find("sweep,cell,config,instance,rep,seed,hash,topology"),
            std::string::npos);
  EXPECT_NE(csv.find(",cache_hits,cache_misses,cache_hit_rate,"),
            std::string::npos);
  // 1 comment + 1 header + 4 cell rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 6);

  const std::string html = render_html(reports);
  EXPECT_NE(html.find("<!doctype html>"), std::string::npos);
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("mean RPD (%)"), std::string::npos);
  EXPECT_NE(html.find("cache hit %"), std::string::npos);
  EXPECT_NE(html.find("</html>"), std::string::npos);
  // Deterministic: rendering twice yields identical bytes.
  EXPECT_EQ(html, render_html(reports));
}

TEST(ReportRender, CsvQuotesCommaCarryingFields) {
  SweepSpec spec = SweepSpec::parse(
      "engine=simple pop=8 problem=openshop\n"
      "instance=gen:jobs={3,4},machines=3,seed=2\n"
      "@reps=1 @generations=2");
  std::ostringstream telemetry;
  {
    TelemetrySink sink(telemetry);
    SweepOptions options;
    options.telemetry = &sink;
    ASSERT_EQ(run_sweep(spec, options).failed, 0);
  }
  std::istringstream in(telemetry.str());
  const std::string csv = render_csv(parse_telemetry(in));
  // The gen: spec value contains commas, so it must be quoted.
  EXPECT_NE(csv.find("\"engine=simple pop=8 problem=openshop "
                     "instance=gen:jobs=3,machines=3,seed=2"),
            std::string::npos)
      << csv;
}

TEST(ReportRender, DuplicateCellRecordsResolveLastWins) {
  std::istringstream in(
      "{\"event\":\"sweep_begin\",\"sweep\":\"s\",\"cells\":2}\n"
      "{\"event\":\"cell\",\"cell\":0,\"hash\":\"aa\",\"ok\":true,"
      "\"best_objective\":100}\n"
      "{\"event\":\"sweep_begin\",\"sweep\":\"s\",\"cells\":2}\n"
      "{\"event\":\"cell\",\"cell\":0,\"hash\":\"aa\",\"ok\":true,"
      "\"best_objective\":90}\n"
      "{\"event\":\"cell\",\"cell\":1,\"hash\":\"bb\",\"ok\":false,"
      "\"error\":\"boom\"}\n"
      "half a line");
  const std::vector<SweepReport> reports = parse_telemetry(in);
  // The resumed file's second sweep_begin merges into one report.
  ASSERT_EQ(reports.size(), 1u);
  ASSERT_EQ(reports[0].cells.size(), 2u);
  EXPECT_DOUBLE_EQ(reports[0].cells[0].best_objective, 90.0);
  EXPECT_FALSE(reports[0].cells[1].ok);
  EXPECT_EQ(reports[0].cells[1].error, "boom");
}

}  // namespace
}  // namespace psga::exp
