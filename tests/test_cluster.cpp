#include "src/par/cluster.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <vector>

namespace psga::par {
namespace {

TEST(Cluster, SingleRankRuns) {
  Cluster cluster(1);
  bool ran = false;
  cluster.run([&](Rank& rank) {
    EXPECT_EQ(rank.id(), 0);
    EXPECT_EQ(rank.size(), 1);
    ran = true;
  });
  EXPECT_TRUE(ran);
}

TEST(Cluster, PointToPointMessage) {
  Cluster cluster(2);
  cluster.run([](Rank& rank) {
    if (rank.id() == 0) {
      Message msg;
      msg.tag = 7;
      msg.ints = {1, 2, 3};
      msg.doubles = {4.5};
      rank.send(1, msg);
    } else {
      const Message msg = rank.recv(7);
      EXPECT_EQ(msg.source, 0);
      EXPECT_EQ(msg.ints, (std::vector<std::int64_t>{1, 2, 3}));
      EXPECT_EQ(msg.doubles, (std::vector<double>{4.5}));
    }
  });
}

TEST(Cluster, TagFiltering) {
  // A message with a different tag must not satisfy a recv for another.
  Cluster cluster(2);
  cluster.run([](Rank& rank) {
    if (rank.id() == 0) {
      Message a;
      a.tag = 1;
      a.ints = {10};
      Message b;
      b.tag = 2;
      b.ints = {20};
      rank.send(1, a);
      rank.send(1, b);
    } else {
      const Message second = rank.recv(2);  // out of arrival order
      EXPECT_EQ(second.ints[0], 20);
      const Message first = rank.recv(1);
      EXPECT_EQ(first.ints[0], 10);
    }
  });
}

TEST(Cluster, TryRecvNonBlocking) {
  Cluster cluster(2);
  cluster.run([](Rank& rank) {
    if (rank.id() == 0) {
      Message none;
      EXPECT_FALSE(rank.try_recv(9, none));
      Message msg;
      msg.tag = 3;
      rank.send(1, msg);
      rank.barrier();
    } else {
      rank.barrier();
      Message msg;
      // After the barrier the message must have been delivered.
      EXPECT_TRUE(rank.try_recv(3, msg));
      EXPECT_EQ(msg.source, 0);
    }
  });
}

TEST(Cluster, BarrierSynchronizes) {
  const int ranks = 6;
  Cluster cluster(ranks);
  std::atomic<int> before{0};
  std::atomic<bool> violated{false};
  cluster.run([&](Rank& rank) {
    ++before;
    rank.barrier();
    if (before.load() != ranks) violated = true;
    rank.barrier();
  });
  EXPECT_FALSE(violated.load());
}

TEST(Cluster, RepeatedBarriers) {
  Cluster cluster(4);
  std::atomic<int> counter{0};
  cluster.run([&](Rank& rank) {
    for (int round = 0; round < 20; ++round) {
      ++counter;
      rank.barrier();
      EXPECT_EQ(counter.load() % 4, 0);
      rank.barrier();
    }
  });
}

TEST(Cluster, AllgatherDeliversEveryRanksPayload) {
  const int ranks = 5;
  Cluster cluster(ranks);
  std::mutex mutex;
  std::vector<std::vector<std::int64_t>> received(ranks);
  cluster.run([&](Rank& rank) {
    Message mine;
    mine.ints = {rank.id() * 100};
    const auto all = rank.allgather(std::move(mine), 11);
    std::vector<std::int64_t> values;
    for (const auto& msg : all) values.push_back(msg.ints[0]);
    std::lock_guard lock(mutex);
    received[static_cast<std::size_t>(rank.id())] = values;
  });
  for (int r = 0; r < ranks; ++r) {
    ASSERT_EQ(received[static_cast<std::size_t>(r)].size(),
              static_cast<std::size_t>(ranks));
    for (int s = 0; s < ranks; ++s) {
      EXPECT_EQ(received[static_cast<std::size_t>(r)][static_cast<std::size_t>(s)],
                s * 100);
    }
  }
}

TEST(Cluster, ManyMessagesPreserveAll) {
  Cluster cluster(3);
  cluster.run([](Rank& rank) {
    const int kMessages = 200;
    if (rank.id() == 0) {
      for (int i = 0; i < kMessages; ++i) {
        Message msg;
        msg.tag = 1;
        msg.ints = {i};
        rank.send(1, msg);
      }
    } else if (rank.id() == 1) {
      long sum = 0;
      for (int i = 0; i < kMessages; ++i) sum += rank.recv(1).ints[0];
      EXPECT_EQ(sum, static_cast<long>(kMessages) * (kMessages - 1) / 2);
    }
  });
}

TEST(Cluster, RingPass) {
  const int ranks = 8;
  Cluster cluster(ranks);
  cluster.run([&](Rank& rank) {
    Message token;
    token.tag = 4;
    token.ints = {1};
    if (rank.id() == 0) {
      rank.send(1, token);
      const Message back = rank.recv(4);
      EXPECT_EQ(back.ints[0], ranks);
    } else {
      Message received = rank.recv(4);
      received.ints[0] += 1;
      received.tag = 4;
      rank.send((rank.id() + 1) % ranks, received);
    }
  });
}

TEST(Cluster, InvalidSizeThrows) {
  EXPECT_THROW(Cluster cluster(0), std::invalid_argument);
}

}  // namespace
}  // namespace psga::par
