#include "src/sched/io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "src/sched/classics.h"
#include "src/sched/taillard.h"

namespace psga::sched {
namespace {

TEST(JobShopIo, RoundTripFt06) {
  const JobShopInstance& original = ft06().instance;
  const JobShopInstance parsed = parse_job_shop(format_job_shop(original));
  ASSERT_EQ(parsed.jobs, original.jobs);
  ASSERT_EQ(parsed.machines, original.machines);
  for (int j = 0; j < original.jobs; ++j) {
    for (int k = 0; k < original.ops_of(j); ++k) {
      EXPECT_EQ(parsed.op(j, k).machine, original.op(j, k).machine);
      EXPECT_EQ(parsed.op(j, k).duration, original.op(j, k).duration);
    }
  }
}

TEST(JobShopIo, ParsesStandardFormatWithComments) {
  const std::string text =
      "# Fisher-Thompson toy\n"
      "2 2\n"
      "0 3 1 2\n"
      "1 4 0 1\n";
  const JobShopInstance inst = parse_job_shop(text);
  EXPECT_EQ(inst.jobs, 2);
  EXPECT_EQ(inst.machines, 2);
  EXPECT_EQ(inst.op(0, 0).machine, 0);
  EXPECT_EQ(inst.op(0, 0).duration, 3);
  EXPECT_EQ(inst.op(1, 1).machine, 0);
  EXPECT_EQ(inst.op(1, 1).duration, 1);
}

TEST(JobShopIo, RejectsMalformedInput) {
  EXPECT_THROW(parse_job_shop(""), std::invalid_argument);
  EXPECT_THROW(parse_job_shop("2 2\n0 3 1"), std::invalid_argument);
  EXPECT_THROW(parse_job_shop("2 2\n0 3 9 2\n1 4 0 1"),
               std::invalid_argument);  // machine id 9 out of range
  EXPECT_THROW(parse_job_shop("0 5"), std::invalid_argument);
  EXPECT_THROW(parse_job_shop("1 1\n0 -4"), std::invalid_argument);
}

TEST(FlowShopIo, RoundTripTaillard) {
  const FlowShopInstance original = taillard_flow_shop(20, 5, 873654221);
  const FlowShopInstance parsed = parse_flow_shop(format_flow_shop(original));
  EXPECT_EQ(parsed.jobs, original.jobs);
  EXPECT_EQ(parsed.machines, original.machines);
  EXPECT_EQ(parsed.proc, original.proc);
}

TEST(FlowShopIo, ParsesTaillardFormat) {
  const std::string text =
      "# toy flow shop\n"
      "3 2\n"
      "5 1 3\n"
      "2 4 6\n";
  const FlowShopInstance inst = parse_flow_shop(text);
  EXPECT_EQ(inst.jobs, 3);
  EXPECT_EQ(inst.machines, 2);
  EXPECT_EQ(inst.processing(0, 1), 1);
  EXPECT_EQ(inst.processing(1, 2), 6);
}

TEST(FlowShopIo, RejectsMalformedInput) {
  EXPECT_THROW(parse_flow_shop("3 2\n5 1 3\n2 4"), std::invalid_argument);
  EXPECT_THROW(parse_flow_shop("-1 2"), std::invalid_argument);
}

TEST(FileIo, SaveAndLoadJobShop) {
  const std::string path = "/tmp/psga_test_ft06.jsp";
  save_job_shop(ft06().instance, path);
  const JobShopInstance loaded = load_job_shop(path);
  EXPECT_EQ(loaded.jobs, 6);
  EXPECT_EQ(loaded.machines, 6);
  EXPECT_EQ(loaded.op(5, 5).duration, ft06().instance.op(5, 5).duration);
  std::remove(path.c_str());
}

TEST(FileIo, SaveAndLoadFlowShop) {
  const std::string path = "/tmp/psga_test_ta.fsp";
  const FlowShopInstance original = taillard_flow_shop(10, 5, 12345);
  save_flow_shop(original, path);
  EXPECT_EQ(load_flow_shop(path).proc, original.proc);
  std::remove(path.c_str());
}

TEST(FileIo, MissingFileThrows) {
  EXPECT_THROW(load_job_shop("/nonexistent/x.jsp"), std::runtime_error);
  EXPECT_THROW(load_flow_shop("/nonexistent/x.fsp"), std::runtime_error);
}

}  // namespace
}  // namespace psga::sched
