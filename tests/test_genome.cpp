#include "src/ga/genome.h"

#include <gtest/gtest.h>

#include "src/ga/problems.h"

namespace psga::ga {
namespace {

GenomeTraits perm_traits(int n) {
  GenomeTraits t;
  t.seq_kind = SeqKind::kPermutation;
  t.seq_length = n;
  return t;
}

GenomeTraits rep_traits(std::vector<int> repeats) {
  GenomeTraits t;
  t.seq_kind = SeqKind::kJobRepetition;
  t.repeats = std::move(repeats);
  t.seq_length = 0;
  for (int r : t.repeats) t.seq_length += r;
  return t;
}

TEST(Genome, HammingDistance) {
  Genome a;
  a.seq = {0, 1, 2, 3};
  Genome b;
  b.seq = {0, 2, 1, 3};
  EXPECT_EQ(hamming_distance(a, a), 0);
  EXPECT_EQ(hamming_distance(a, b), 2);
}

TEST(Genome, HammingDistanceDifferentLengths) {
  Genome a;
  a.seq = {0, 1, 2};
  Genome b;
  b.seq = {0, 1};
  EXPECT_EQ(hamming_distance(a, b), 1);
}

TEST(GenomeValid, AcceptsPermutation) {
  Genome g;
  g.seq = {2, 0, 1, 3};
  EXPECT_TRUE(genome_valid(g, perm_traits(4)));
}

TEST(GenomeValid, RejectsDuplicateInPermutation) {
  Genome g;
  g.seq = {2, 0, 0, 3};
  EXPECT_FALSE(genome_valid(g, perm_traits(4)));
}

TEST(GenomeValid, RejectsWrongLength) {
  Genome g;
  g.seq = {0, 1, 2};
  EXPECT_FALSE(genome_valid(g, perm_traits(4)));
}

TEST(GenomeValid, AcceptsRepetitionMultiset) {
  Genome g;
  g.seq = {0, 1, 0, 1, 1};
  EXPECT_TRUE(genome_valid(g, rep_traits({2, 3})));
}

TEST(GenomeValid, RejectsWrongMultiset) {
  Genome g;
  g.seq = {0, 0, 0, 1, 1};
  EXPECT_FALSE(genome_valid(g, rep_traits({2, 3})));
}

TEST(GenomeValid, ChecksAssignDomains) {
  GenomeTraits t = perm_traits(2);
  t.assign_domain = {3, 2};
  Genome g;
  g.seq = {1, 0};
  g.assign = {2, 1};
  EXPECT_TRUE(genome_valid(g, t));
  g.assign = {3, 1};
  EXPECT_FALSE(genome_valid(g, t));
  g.assign = {2};
  EXPECT_FALSE(genome_valid(g, t));
}

TEST(GenomeValid, ChecksKeyLength) {
  GenomeTraits t;
  t.seq_kind = SeqKind::kNone;
  t.key_length = 3;
  Genome g;
  g.keys = {0.1, 0.5, 0.9};
  EXPECT_TRUE(genome_valid(g, t));
  g.keys.pop_back();
  EXPECT_FALSE(genome_valid(g, t));
}

TEST(KeysToPermutation, SortsByKey) {
  const std::vector<double> keys = {0.7, 0.1, 0.4};
  EXPECT_EQ(keys_to_permutation(keys), (std::vector<int>{1, 2, 0}));
}

TEST(KeysToPermutation, StableOnTies) {
  const std::vector<double> keys = {0.5, 0.5, 0.1};
  EXPECT_EQ(keys_to_permutation(keys), (std::vector<int>{2, 0, 1}));
}

TEST(KeysToRepetition, ProducesValidMultiset) {
  const std::vector<int> repeats = {2, 1, 3};
  const std::vector<double> keys = {0.9, 0.1, 0.5, 0.2, 0.8, 0.3};
  const auto seq = keys_to_repetition_sequence(keys, repeats);
  ASSERT_EQ(seq.size(), 6u);
  EXPECT_EQ(std::count(seq.begin(), seq.end(), 0), 2);
  EXPECT_EQ(std::count(seq.begin(), seq.end(), 1), 1);
  EXPECT_EQ(std::count(seq.begin(), seq.end(), 2), 3);
  // Smallest key is slot 1 (job 0's second op slot -> job 0 first).
  EXPECT_EQ(seq[0], 0);
}

}  // namespace
}  // namespace psga::ga
