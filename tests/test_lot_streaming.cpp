#include "src/sched/lot_streaming.h"

#include <gtest/gtest.h>

#include <numeric>

#include "src/par/rng.h"
#include "src/sched/generators.h"

namespace psga::sched {
namespace {

TEST(SublotSizes, EqualKeysSplitEvenly) {
  const std::vector<double> keys = {1.0, 1.0, 1.0, 1.0};
  const auto sizes = sublot_sizes_from_keys(40, keys);
  EXPECT_EQ(sizes, (std::vector<int>{10, 10, 10, 10}));
}

TEST(SublotSizes, SumAlwaysEqualsBatch) {
  par::Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    const int batch = rng.range(1, 100);
    const int lots = rng.range(1, 6);
    std::vector<double> keys(static_cast<std::size_t>(lots));
    for (auto& k : keys) k = rng.uniform(0.01, 1.0);
    const auto sizes = sublot_sizes_from_keys(batch, keys);
    EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), 0), batch);
  }
}

TEST(SublotSizes, NoEmptySublotWhenBatchAllows) {
  const std::vector<double> keys = {100.0, 0.0001, 0.0001};
  const auto sizes = sublot_sizes_from_keys(10, keys);
  for (int s : sizes) EXPECT_GE(s, 1);
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), 0), 10);
}

TEST(SublotSizes, ProportionalToKeys) {
  const std::vector<double> keys = {3.0, 1.0};
  const auto sizes = sublot_sizes_from_keys(40, keys);
  EXPECT_EQ(sizes, (std::vector<int>{30, 10}));
}

LotStreamingInstance tiny() {
  LotStreamingInstance inst;
  inst.machines_per_stage = {1, 1};
  inst.batch = {10, 12};
  inst.sublots = {2, 2};
  // unit_proc[stage][job][machine]
  inst.unit_proc = {{{2}, {1}}, {{1}, {3}}};
  return inst;
}

TEST(LotStreaming, ExpansionStructure) {
  const LotStreamingInstance inst = tiny();
  EXPECT_EQ(inst.total_sublots(), 4);
  std::vector<int> owner;
  std::vector<double> keys(4, 1.0);
  const HybridFlowShopInstance hfs = expand_lot_streaming(inst, keys, &owner);
  EXPECT_EQ(hfs.jobs, 4);
  EXPECT_EQ(owner, (std::vector<int>{0, 0, 1, 1}));
  // Equal keys: job 0 splits 10 -> {5, 5}; durations on stage 0 = 10 each.
  EXPECT_EQ(hfs.proc[0][0][0], 10);
  EXPECT_EQ(hfs.proc[0][1][0], 10);
  // Job 1 splits 12 -> {6, 6}; stage 1 unit 3 -> 18.
  EXPECT_EQ(hfs.proc[1][2][0], 18);
}

TEST(LotStreaming, StreamingBeatsWholeBatch) {
  // With sublots the second stage can start before the whole batch is
  // done on stage one; a single sublot per job is the no-streaming case.
  LotStreamingInstance streamed = tiny();
  LotStreamingInstance whole = tiny();
  whole.sublots = {1, 1};

  std::vector<double> streamed_keys(4, 1.0);
  std::vector<int> streamed_perm = {0, 1, 2, 3};
  const Time with_streaming =
      lot_streaming_makespan(streamed, streamed_keys, streamed_perm);

  std::vector<double> whole_keys(2, 1.0);
  std::vector<int> whole_perm = {0, 1};
  const Time without = lot_streaming_makespan(whole, whole_keys, whole_perm);

  EXPECT_LT(with_streaming, without);
}

TEST(LotStreaming, ExpandedScheduleFeasible) {
  LotStreamParams params;
  params.jobs = 5;
  params.machines_per_stage = {2, 2};
  params.sublots = 3;
  const LotStreamingInstance inst = random_lot_streaming(params, 13);
  par::Rng rng(31);
  std::vector<double> keys(static_cast<std::size_t>(inst.total_sublots()));
  for (auto& k : keys) k = rng.uniform(0.1, 1.0);
  std::vector<int> perm(static_cast<std::size_t>(inst.total_sublots()));
  std::iota(perm.begin(), perm.end(), 0);
  rng.shuffle(perm);
  const HybridFlowShopInstance hfs = expand_lot_streaming(inst, keys, nullptr);
  const Schedule s = decode_hybrid_flow_shop(hfs, perm);
  EXPECT_EQ(validate(s, hfs.validation_spec()), std::nullopt);
}

class LotSweep : public ::testing::TestWithParam<int> {};

TEST_P(LotSweep, MakespanDeterministicAndPositive) {
  const int seed = GetParam();
  LotStreamParams params;
  params.jobs = 3 + seed % 5;
  params.sublots = 1 + seed % 4;
  const LotStreamingInstance inst =
      random_lot_streaming(params, static_cast<std::uint64_t>(seed) + 5);
  par::Rng rng(static_cast<std::uint64_t>(seed));
  std::vector<double> keys(static_cast<std::size_t>(inst.total_sublots()));
  for (auto& k : keys) k = rng.uniform(0.1, 1.0);
  std::vector<int> perm(static_cast<std::size_t>(inst.total_sublots()));
  std::iota(perm.begin(), perm.end(), 0);
  const Time a = lot_streaming_makespan(inst, keys, perm);
  const Time b = lot_streaming_makespan(inst, keys, perm);
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LotSweep, ::testing::Range(0, 10));

}  // namespace
}  // namespace psga::sched
