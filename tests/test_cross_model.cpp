// Cross-model consistency properties: different shop models must agree
// where their definitions coincide, and every decoder must produce
// feasible schedules under fuzzed instances (the survey's Table I,
// checked across the whole substrate at once).
#include <gtest/gtest.h>

#include <numeric>

#include "src/par/rng.h"
#include "src/sched/flexible_job_shop.h"
#include "src/sched/flow_shop.h"
#include "src/sched/generators.h"
#include "src/sched/hybrid_flow_shop.h"
#include "src/sched/job_shop.h"

namespace psga::sched {
namespace {

class CrossModelSweep : public ::testing::TestWithParam<int> {};

TEST_P(CrossModelSweep, FlowShopEqualsSingleMachineHfs) {
  // A hybrid flow shop with exactly one machine per stage IS a
  // permutation flow shop; the two decoders must produce identical
  // makespans for the same permutation.
  const int seed = GetParam();
  par::Rng rng(static_cast<std::uint64_t>(seed) * 11 + 1);
  const int jobs = 3 + seed % 8;
  const int machines = 2 + seed % 5;

  FlowShopInstance fs;
  fs.jobs = jobs;
  fs.machines = machines;
  fs.proc.assign(static_cast<std::size_t>(machines),
                 std::vector<Time>(static_cast<std::size_t>(jobs), 0));
  HybridFlowShopInstance hfs;
  hfs.jobs = jobs;
  hfs.machines_per_stage.assign(static_cast<std::size_t>(machines), 1);
  hfs.proc.assign(static_cast<std::size_t>(machines), {});
  for (int m = 0; m < machines; ++m) {
    auto& stage = hfs.proc[static_cast<std::size_t>(m)];
    stage.assign(static_cast<std::size_t>(jobs), {});
    for (int j = 0; j < jobs; ++j) {
      const Time p = rng.range(1, 60);
      fs.proc[static_cast<std::size_t>(m)][static_cast<std::size_t>(j)] = p;
      stage[static_cast<std::size_t>(j)] = {p};
    }
  }
  std::vector<int> perm(static_cast<std::size_t>(jobs));
  std::iota(perm.begin(), perm.end(), 0);
  for (int trial = 0; trial < 10; ++trial) {
    rng.shuffle(perm);
    EXPECT_EQ(flow_shop_makespan(fs, perm),
              decode_hybrid_flow_shop(hfs, perm).makespan());
  }
}

TEST_P(CrossModelSweep, FlowShopEqualsChainJobShop) {
  // A job shop whose every route is machine 0..m-1 is a flow shop; for a
  // permutation chromosome expanded job-major (all ops of the first job,
  // then the next, would be semi-active but NOT the permutation schedule),
  // use the per-stage interleaving that reproduces the permutation
  // semantics: stage-major expansion (all first ops in permutation order,
  // then all second ops, ...).
  const int seed = GetParam();
  par::Rng rng(static_cast<std::uint64_t>(seed) * 13 + 5);
  const int jobs = 3 + seed % 6;
  const int machines = 2 + seed % 4;

  FlowShopInstance fs;
  fs.jobs = jobs;
  fs.machines = machines;
  fs.proc.assign(static_cast<std::size_t>(machines),
                 std::vector<Time>(static_cast<std::size_t>(jobs), 0));
  JobShopInstance js;
  js.jobs = jobs;
  js.machines = machines;
  js.ops.assign(static_cast<std::size_t>(jobs), {});
  for (int j = 0; j < jobs; ++j) {
    for (int m = 0; m < machines; ++m) {
      const Time p = rng.range(1, 60);
      fs.proc[static_cast<std::size_t>(m)][static_cast<std::size_t>(j)] = p;
      js.ops[static_cast<std::size_t>(j)].push_back(JsOperation{m, p});
    }
  }
  std::vector<int> perm(static_cast<std::size_t>(jobs));
  std::iota(perm.begin(), perm.end(), 0);
  for (int trial = 0; trial < 10; ++trial) {
    rng.shuffle(perm);
    std::vector<int> stage_major;
    for (int m = 0; m < machines; ++m) {
      for (int j : perm) stage_major.push_back(j);
    }
    EXPECT_EQ(flow_shop_makespan(fs, perm),
              decode_operation_based(js, stage_major).makespan());
  }
}

TEST_P(CrossModelSweep, JobShopEqualsSingleChoiceFjs) {
  // A flexible job shop where every operation has exactly one eligible
  // machine IS a job shop; same chromosome, same schedule.
  const int seed = GetParam();
  const JobShopInstance js =
      random_job_shop(4 + seed % 5, 3 + seed % 3,
                      static_cast<std::uint64_t>(seed) * 17 + 3);
  FlexibleJobShopInstance fjs;
  fjs.jobs = js.jobs;
  fjs.machines = js.machines;
  fjs.ops.assign(static_cast<std::size_t>(js.jobs), {});
  for (int j = 0; j < js.jobs; ++j) {
    for (int k = 0; k < js.ops_of(j); ++k) {
      FjsOperation op;
      op.choices = {{js.op(j, k).machine, js.op(j, k).duration}};
      fjs.ops[static_cast<std::size_t>(j)].push_back(op);
    }
  }
  par::Rng rng(static_cast<std::uint64_t>(seed) + 99);
  const std::vector<int> assign(
      static_cast<std::size_t>(fjs.total_ops()), 0);
  for (int trial = 0; trial < 10; ++trial) {
    const auto seq = random_operation_sequence(js, rng);
    EXPECT_EQ(decode_operation_based(js, seq).makespan(),
              decode_flexible_job_shop(fjs, assign, seq).makespan());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CrossModelSweep, ::testing::Range(0, 10));

TEST(CrossModel, GtActiveNeverWorseThanBestKnownBoundRelation) {
  // On any chain job shop, the GT-active makespan of the identity
  // chromosome equals the flow-shop identity-permutation makespan or
  // better (active schedules dominate the semi-active space).
  par::Rng rng(4242);
  for (int trial = 0; trial < 5; ++trial) {
    const JobShopInstance js = random_job_shop(6, 4, 300u + trial);
    const auto seq = random_operation_sequence(js, rng);
    const Time semi = decode_operation_based(js, seq).makespan();
    const Time active = giffler_thompson_sequence(js, seq).makespan();
    // Not a strict dominance per chromosome, but both must be feasible
    // and in the same ballpark; the aggregate dominance is tested in
    // test_job_shop. Here: both validate.
    EXPECT_EQ(validate(decode_operation_based(js, seq), js.validation_spec()),
              std::nullopt);
    EXPECT_EQ(
        validate(giffler_thompson_sequence(js, seq), js.validation_spec()),
        std::nullopt);
    EXPECT_GT(semi, 0);
    EXPECT_GT(active, 0);
  }
}

}  // namespace
}  // namespace psga::sched
