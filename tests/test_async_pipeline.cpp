// The async evaluation pipeline (eval=async_pool) overlaps breeding with
// evaluation behind a generation fence. Because objectives are pure and
// the logical evaluation count is taken at submit time, the pipeline must
// be invisible in every observable: these tests pin async-vs-sync trace
// equivalence for all eight engines, the per-generation fence at the
// stepwise API, determinism under 1-16 worker threads and repeated seeds,
// and the interaction with StopCondition evaluation budgets and the
// evaluation cache.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/ga/problems.h"
#include "src/ga/solver.h"
#include "src/sched/classics.h"
#include "src/sched/taillard.h"

namespace psga::ga {
namespace {

ProblemPtr flow_shop() {
  return std::make_shared<FlowShopProblem>(
      sched::make_taillard(sched::taillard_20x5().front()));
}

// --- evaluator-level submit/fence contract -----------------------------------

TEST(AsyncEvaluator, SubmitCountsAtSubmitAndFenceCompletes) {
  const ProblemPtr problem = flow_shop();
  par::Rng rng(3);
  std::vector<Genome> batch;
  for (int i = 0; i < 16; ++i) batch.push_back(problem->random_genome(rng));
  std::vector<double> expect(batch.size());
  Evaluator serial(problem, EvalBackend::kSerial);
  serial.evaluate(batch, expect);

  par::ThreadPool pool(3);
  Evaluator async(problem, EvalBackend::kAsyncPool, &pool);
  std::vector<double> got(batch.size(), -1.0);
  async.submit(std::span<const Genome>(batch).subspan(0, 10),
               std::span<double>(got).subspan(0, 10));
  async.submit(std::span<const Genome>(batch).subspan(10),
               std::span<double>(got).subspan(10));
  // The logical count is visible immediately — budgets never depend on
  // how far the coordinator got.
  EXPECT_EQ(async.evaluations(), 16);
  async.fence();
  EXPECT_EQ(got, expect);
  EXPECT_EQ(async.decode_calls(), 16);
  EXPECT_EQ(async.evaluate_one(batch.front()), expect.front());
}

TEST(AsyncEvaluator, CoordinatorOnlyModeMatchesSerial) {
  const ProblemPtr problem = flow_shop();
  par::Rng rng(9);
  std::vector<Genome> batch;
  for (int i = 0; i < 12; ++i) batch.push_back(problem->random_genome(rng));
  std::vector<double> expect(batch.size());
  Evaluator serial(problem, EvalBackend::kSerial);
  serial.evaluate(batch, expect);

  Evaluator async(problem, EvalBackend::kAsyncPool, nullptr,
                  /*async_coordinator_only=*/true);
  std::vector<double> got(batch.size(), -1.0);
  async.submit(batch, got);
  async.fence();
  EXPECT_EQ(got, expect);
}

// --- per-generation fence at the stepwise API --------------------------------

TEST(AsyncPipeline, StepwiseStateIdenticalAtEveryGenerationFence) {
  const ProblemPtr problem = flow_shop();
  GaConfig serial_cfg;
  serial_cfg.population = 18;
  serial_cfg.elites = 3;
  serial_cfg.seed = 77;
  GaConfig async_cfg = serial_cfg;
  async_cfg.eval_backend = EvalBackend::kAsyncPool;

  SimpleGa serial(problem, serial_cfg);
  SimpleGa async(problem, async_cfg);
  serial.init();
  async.init();
  ASSERT_EQ(serial.objectives(), async.objectives());
  for (int gen = 0; gen < 10; ++gen) {
    SCOPED_TRACE(gen);
    serial.step();
    async.step();
    // After each step the fence has passed: the whole population, its
    // objectives and the running best must match bit for bit.
    EXPECT_EQ(serial.best_objective(), async.best_objective());
    EXPECT_EQ(serial.best().seq, async.best().seq);
    EXPECT_EQ(serial.objectives(), async.objectives());
    EXPECT_EQ(serial.population(), async.population());
    EXPECT_EQ(serial.evaluations(), async.evaluations());
  }
}

// --- async vs sync equivalence for all eight engines -------------------------

const char* kEngineSpecs[] = {
    "engine=simple pop=20 elites=4 seed=19",
    "engine=master-slave pop=20 elites=4 seed=19",
    "engine=cellular width=5 height=4 seed=19",
    "engine=island islands=3 pop=10 interval=2 seed=19",
    "engine=islands-of-cellular islands=2 width=4 height=3 interval=2 seed=19",
    "engine=quantum islands=2 pop=8 seed=19",
    "engine=memetic pop=14 interval=2 refine=2 budget=40 seed=19",
    "engine=cluster ranks=2 pop=10 interval=2 seed=19",
};

class AsyncEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(AsyncEquivalence, TraceBitIdenticalToSerialWithAndWithoutCache) {
  const std::string base = GetParam();
  const StopCondition stop = StopCondition::generations(6);
  const ProblemPtr problem = flow_shop();
  const RunResult serial =
      Solver::build(SolverSpec::parse(base + " eval=serial"), problem)
          .run(stop);
  const RunResult async =
      Solver::build(SolverSpec::parse(base + " eval=async_pool"), problem)
          .run(stop);
  EXPECT_EQ(serial.history, async.history);
  EXPECT_EQ(serial.best.seq, async.best.seq);
  EXPECT_EQ(serial.best_objective, async.best_objective);
  EXPECT_EQ(serial.evaluations, async.evaluations);
  // The acceptance bar: cache AND pipeline on together, still the exact
  // synchronous serial baseline.
  const RunResult both =
      Solver::build(
          SolverSpec::parse(base + " eval=async_pool eval_cache=lru:65536"),
          problem)
          .run(stop);
  EXPECT_EQ(serial.history, both.history);
  EXPECT_EQ(serial.best.seq, both.best.seq);
  EXPECT_EQ(serial.evaluations, both.evaluations);
  ASSERT_TRUE(both.cache.has_value());
  EXPECT_EQ(both.cache->hits + both.cache->misses, both.evaluations);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, AsyncEquivalence,
                         ::testing::ValuesIn(kEngineSpecs));

// --- stress: worker counts x repeated seeds ----------------------------------

TEST(AsyncPipeline, StressOneToSixteenThreadsRepeatedSeeds) {
  const ProblemPtr problem = flow_shop();
  const StopCondition stop = StopCondition::generations(5);
  for (const std::uint64_t seed : {1ull, 5ull, 9ull, 13ull, 17ull}) {
    GaConfig cfg;
    cfg.population = 16;
    cfg.elites = 2;
    cfg.seed = seed;
    SimpleGa serial(problem, cfg);
    const RunResult expect = serial.run(stop);
    for (const int threads : {1, 2, 3, 4, 8, 16}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " threads=" + std::to_string(threads));
      par::ThreadPool pool(threads);
      GaConfig async_cfg = cfg;
      async_cfg.eval_backend = EvalBackend::kAsyncPool;
      SimpleGa async(problem, async_cfg, &pool);
      const RunResult got = async.run(stop);
      EXPECT_EQ(expect.history, got.history);
      EXPECT_EQ(expect.best.seq, got.best.seq);
      EXPECT_EQ(expect.evaluations, got.evaluations);
    }
  }
}

// --- evaluation budgets: cache hits count exactly once -----------------------

TEST(AsyncPipeline, EvaluationBudgetCountsCacheHitsExactlyOnce) {
  // Regression: a cache hit (or an in-flight async batch) must count
  // toward the evaluation budget exactly like a decode, so the budget
  // cuts every variant at the same generation with identical traces.
  const ProblemPtr problem = flow_shop();
  const StopCondition budget = StopCondition::evaluation_budget(95);
  const std::string base = "engine=simple pop=10 elites=4 seed=29";
  const RunResult reference =
      Solver::build(SolverSpec::parse(base + " eval=serial"), problem)
          .run(budget);
  EXPECT_GE(reference.evaluations, 95);
  for (const char* variant :
       {" eval=serial eval_cache=unbounded", " eval=async_pool",
        " eval=async_pool eval_cache=lru:4096"}) {
    SCOPED_TRACE(variant);
    const RunResult got =
        Solver::build(SolverSpec::parse(base + variant), problem).run(budget);
    EXPECT_EQ(reference.generations, got.generations);
    EXPECT_EQ(reference.evaluations, got.evaluations);
    EXPECT_EQ(reference.history, got.history);
    EXPECT_EQ(reference.best.seq, got.best.seq);
  }
}

}  // namespace
}  // namespace psga::ga
