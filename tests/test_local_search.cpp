#include "src/ga/local_search.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/ga/problems.h"
#include "src/sched/classics.h"
#include "src/sched/taillard.h"

namespace psga::ga {
namespace {

TEST(LocalSearch, NeverWorsens) {
  auto problem = std::make_shared<FlowShopProblem>(
      sched::make_taillard(sched::taillard_20x5().front()));
  par::Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    Genome g = problem->random_genome(rng);
    const double before = problem->objective(g);
    const double after = local_search_swap(*problem, g, 100, rng);
    EXPECT_LE(after, before);
    EXPECT_DOUBLE_EQ(problem->objective(g), after);
    EXPECT_TRUE(genome_valid(g, problem->traits()));
  }
}

TEST(LocalSearch, UsuallyImprovesRandomStarts) {
  auto problem = std::make_shared<FlowShopProblem>(
      sched::make_taillard(sched::taillard_20x5().front()));
  par::Rng rng(2);
  int improved = 0;
  for (int trial = 0; trial < 10; ++trial) {
    Genome g = problem->random_genome(rng);
    const double before = problem->objective(g);
    if (local_search_swap(*problem, g, 200, rng) < before) ++improved;
  }
  EXPECT_GE(improved, 8);
}

TEST(LocalSearch, RespectsEvaluationBudget) {
  // A budget of zero must leave the genome untouched.
  auto problem = std::make_shared<JobShopProblem>(sched::ft06().instance);
  par::Rng rng(3);
  Genome g = problem->random_genome(rng);
  const Genome before = g;
  local_search_swap(*problem, g, 0, rng);
  EXPECT_EQ(g.seq, before.seq);
}

TEST(LocalSearch, WorksOnRepetitionChromosomes) {
  auto problem = std::make_shared<JobShopProblem>(sched::ft06().instance);
  par::Rng rng(4);
  Genome g = problem->random_genome(rng);
  const double before = problem->objective(g);
  const double after = local_search_swap(*problem, g, 150, rng);
  EXPECT_LE(after, before);
  EXPECT_TRUE(genome_valid(g, problem->traits()));
}

TEST(Redirect, PreservesMultiset) {
  par::Rng rng(5);
  Genome g;
  g.seq = {0, 1, 2, 3, 4, 5, 6, 7, 0, 1};
  Genome before = g;
  redirect(g, rng);
  auto sorted_before = before.seq;
  auto sorted_after = g.seq;
  std::sort(sorted_before.begin(), sorted_before.end());
  std::sort(sorted_after.begin(), sorted_after.end());
  EXPECT_EQ(sorted_before, sorted_after);
}

TEST(Redirect, TinySequencesUntouched) {
  par::Rng rng(6);
  Genome g;
  g.seq = {0, 1, 2};
  const Genome before = g;
  redirect(g, rng);
  EXPECT_EQ(g.seq, before.seq);
}

}  // namespace
}  // namespace psga::ga
