#include "src/par/env.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace psga::par {
namespace {

TEST(Env, LongFallbacks) {
  unsetenv("PSGA_TEST_VALUE");
  EXPECT_EQ(env_long("PSGA_TEST_VALUE", 42), 42);
  setenv("PSGA_TEST_VALUE", "17", 1);
  EXPECT_EQ(env_long("PSGA_TEST_VALUE", 42), 17);
  setenv("PSGA_TEST_VALUE", "not-a-number", 1);
  EXPECT_EQ(env_long("PSGA_TEST_VALUE", 42), 42);
  setenv("PSGA_TEST_VALUE", "", 1);
  EXPECT_EQ(env_long("PSGA_TEST_VALUE", 42), 42);
  unsetenv("PSGA_TEST_VALUE");
}

TEST(Env, StringFallbacks) {
  unsetenv("PSGA_TEST_STRING");
  EXPECT_EQ(env_string("PSGA_TEST_STRING", "dflt"), "dflt");
  setenv("PSGA_TEST_STRING", "hello", 1);
  EXPECT_EQ(env_string("PSGA_TEST_STRING", "dflt"), "hello");
  unsetenv("PSGA_TEST_STRING");
}

TEST(Env, BenchScaleMapping) {
  setenv("PSGA_BENCH_SCALE", "small", 1);
  EXPECT_EQ(bench_scale(), 1);
  setenv("PSGA_BENCH_SCALE", "medium", 1);
  EXPECT_EQ(bench_scale(), 4);
  setenv("PSGA_BENCH_SCALE", "large", 1);
  EXPECT_EQ(bench_scale(), 16);
  setenv("PSGA_BENCH_SCALE", "garbage", 1);
  EXPECT_EQ(bench_scale(), 1);
  unsetenv("PSGA_BENCH_SCALE");
  EXPECT_EQ(bench_scale(), 1);
}

TEST(Env, ThreadCountClampedToHardware) {
  setenv("PSGA_THREADS", "1", 1);
  EXPECT_EQ(default_thread_count(), 1);
  setenv("PSGA_THREADS", "0", 1);
  EXPECT_EQ(default_thread_count(), 1);
  setenv("PSGA_THREADS", "100000", 1);
  EXPECT_LE(default_thread_count(), 100000);
  EXPECT_GE(default_thread_count(), 1);
  unsetenv("PSGA_THREADS");
  EXPECT_GE(default_thread_count(), 1);
}

}  // namespace
}  // namespace psga::par
