#include "src/ga/registry.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace psga::ga {
namespace {

TEST(Registry, AllSelectionsResolve) {
  for (const char* name :
       {"roulette", "sus", "tournament2", "tournament5", "rank",
        "elitist-roulette"}) {
    const SelectionPtr sel = make_selection(name);
    ASSERT_NE(sel, nullptr) << name;
  }
  EXPECT_EQ(make_selection("tournament7")->name(), "tournament7");
  EXPECT_EQ(make_selection("tournament")->name(), "tournament2");
}

TEST(Registry, AllCrossoversResolve) {
  for (const char* name :
       {"one-point", "two-point", "pmx", "ox", "cycle", "position-based",
        "jox", "ppx", "thx", "uniform-keys", "arithmetic-keys"}) {
    const CrossoverPtr cx = make_crossover(name);
    ASSERT_NE(cx, nullptr) << name;
    EXPECT_EQ(cx->name(), name);
  }
}

TEST(Registry, AllMutationsResolve) {
  for (const char* name : {"swap", "shift", "inversion", "scramble", "assign",
                           "key-creep", "key-reset"}) {
    const MutationPtr mut = make_mutation(name);
    ASSERT_NE(mut, nullptr) << name;
    EXPECT_EQ(mut->name(), name);
  }
}

TEST(Registry, UnknownNamesThrow) {
  EXPECT_THROW(make_selection("bogus"), std::invalid_argument);
  EXPECT_THROW(make_crossover("bogus"), std::invalid_argument);
  EXPECT_THROW(make_mutation("bogus"), std::invalid_argument);
}

TEST(Registry, CrossoverNameListsAreUsable) {
  for (SeqKind kind : {SeqKind::kPermutation, SeqKind::kJobRepetition,
                       SeqKind::kNone}) {
    const auto names = crossover_names(kind);
    EXPECT_FALSE(names.empty());
    for (const auto& name : names) {
      const CrossoverPtr cx = make_crossover(name);
      EXPECT_TRUE(cx->supports(kind)) << name;
    }
  }
}

TEST(Registry, SequenceMutationListResolves) {
  for (const auto& name : sequence_mutation_names()) {
    EXPECT_NE(make_mutation(name), nullptr);
  }
}

}  // namespace
}  // namespace psga::ga
